//! Opt-in execution timeline profiler.
//!
//! A [`Profiler`] collects *span* events (begin/end pairs) and *instant*
//! events into per-lane buffers: lane 0 is the coordinator thread, and
//! every exchange worker installs its own lane for the lifetime of its
//! partition pipeline. Collection follows the same thread-local
//! discipline as [`crate::trace`]: until a [`LaneGuard`] is installed on
//! the current thread, every emission is a single branch on a
//! thread-local flag and the payload closures never run — so a session
//! that never profiles pays one predictable branch per hook.
//!
//! # Determinism contract
//!
//! Profiling only *observes*: query results, `IoStats`, and the
//! per-operator metric rollup are bit-identical whether or not a
//! profiler is attached. Events are merged deterministically by
//! `(lane, seq)` — the per-lane sequence number assigned at emission —
//! never by timestamp. Timestamps (microseconds since the profiler's
//! epoch) ride along for the exported artifacts only; they are
//! wall-clock measurements and differ run to run, which is why nothing
//! orders by them and why the optimizer trace ([`crate::trace`]) remains
//! timestamp-free and byte-identical across runs.
//!
//! # Exports
//!
//! [`ExecutionProfile::to_chrome_trace`] renders the Chrome trace-event
//! JSON format (load in `chrome://tracing` or Perfetto; one lane per
//! `tid`), one event object per line so line-oriented tooling can check
//! it. [`ExecutionProfile::to_folded_stacks`] renders folded stack lines
//! (`lane;frame;frame <self-microseconds>`) for flamegraph builders.

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Hard cap on buffered events per lane; emissions past it are counted
/// in [`LaneProfile::dropped`] instead of growing without bound.
pub const LANE_CAPACITY: usize = 1 << 20;

/// The phase of a profile event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// A span opens (Chrome `ph: "B"`).
    Begin,
    /// A span closes (Chrome `ph: "E"`).
    End,
    /// A point event with no duration (Chrome `ph: "i"`).
    Instant,
}

/// One timeline event, recorded into exactly one lane.
#[derive(Clone, Debug)]
pub struct ProfileEvent {
    /// Per-lane emission sequence number (0, 1, 2, ... within the lane);
    /// with the lane id this is the event's deterministic identity.
    pub seq: u64,
    /// Begin / end / instant.
    pub kind: SpanKind,
    /// Span name, e.g. `sort#2.next` (operator name, pre-order plan id,
    /// lifecycle phase).
    pub name: String,
    /// Coarse category for trace-viewer filtering (`operator`, `spill`,
    /// `segment`, `exchange`).
    pub cat: &'static str,
    /// Microseconds since the profiler's epoch. Wall-clock measurement:
    /// monotone within a lane, **not** deterministic across runs, and
    /// never used for ordering.
    pub ts_us: u64,
    /// Optional numeric annotations (e.g. rows and spill pages charged
    /// during a span), attached to `End` events.
    pub args: Vec<(&'static str, u64)>,
}

/// One lane's finished event buffer.
#[derive(Clone, Debug)]
pub struct LaneProfile {
    /// Lane id (0 = coordinator; workers get fresh ids in spawn order).
    pub lane: u32,
    /// Human label (`coordinator`, `worker p2`, ...).
    pub label: String,
    /// Events in emission order (`seq` strictly increasing).
    pub events: Vec<ProfileEvent>,
    /// Emissions discarded after the lane hit [`LANE_CAPACITY`].
    pub dropped: u64,
}

#[derive(Debug)]
struct ProfInner {
    epoch: Instant,
    next_lane: AtomicU32,
    lanes: Mutex<Vec<LaneProfile>>,
}

/// A handle collecting one execution's timeline. Cheap to clone; clones
/// feed the same profile.
#[derive(Clone, Debug)]
pub struct Profiler {
    inner: Arc<ProfInner>,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

impl Profiler {
    /// A fresh profiler; its epoch (timestamp zero) is now.
    pub fn new() -> Profiler {
        Profiler {
            inner: Arc::new(ProfInner {
                epoch: Instant::now(),
                next_lane: AtomicU32::new(0),
                lanes: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Reserves `n` consecutive lane ids and returns the first. Exchange
    /// coordinators call this *before* spawning workers, so lane ids
    /// reflect deterministic spawn order, not thread scheduling.
    pub fn alloc_lanes(&self, n: u32) -> u32 {
        self.inner.next_lane.fetch_add(n, Ordering::Relaxed)
    }

    /// Allocates the next lane id and installs it on the current thread.
    pub fn install_lane(&self, label: impl Into<String>) -> LaneGuard {
        let lane = self.alloc_lanes(1);
        self.install_lane_at(lane, label)
    }

    /// Installs a pre-allocated lane id on the current thread. Emissions
    /// on this thread buffer into the lane until the returned guard
    /// drops, which hands the buffer back to the profiler.
    pub fn install_lane_at(&self, lane: u32, label: impl Into<String>) -> LaneGuard {
        COLLECTOR.with(|c| {
            *c.borrow_mut() = Some(LaneCollector {
                profiler: self.clone(),
                lane,
                label: label.into(),
                seq: 0,
                events: Vec::new(),
                dropped: 0,
            });
        });
        ACTIVE.with(|a| a.set(true));
        LaneGuard { _priv: () }
    }

    /// Collects every finished lane into an [`ExecutionProfile`], lanes
    /// sorted by id and each lane's events in emission (`seq`) order.
    /// Call after all [`LaneGuard`]s have dropped.
    pub fn finish(&self) -> ExecutionProfile {
        let mut lanes = std::mem::take(&mut *self.inner.lanes.lock().expect("profile poisoned"));
        lanes.sort_by_key(|l| l.lane);
        ExecutionProfile { lanes }
    }
}

struct LaneCollector {
    profiler: Profiler,
    lane: u32,
    label: String,
    seq: u64,
    events: Vec<ProfileEvent>,
    dropped: u64,
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static COLLECTOR: RefCell<Option<LaneCollector>> = const { RefCell::new(None) };
}

/// Uninstalls the current thread's lane on drop, handing its buffer back
/// to the owning [`Profiler`].
pub struct LaneGuard {
    _priv: (),
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| a.set(false));
        if let Some(col) = COLLECTOR.with(|c| c.borrow_mut().take()) {
            col.profiler
                .inner
                .lanes
                .lock()
                .expect("profile poisoned")
                .push(LaneProfile {
                    lane: col.lane,
                    label: col.label,
                    events: col.events,
                    dropped: col.dropped,
                });
        }
    }
}

/// True when the current thread has a lane installed (i.e. emissions
/// will record). A single thread-local branch.
pub fn enabled() -> bool {
    ACTIVE.with(|a| a.get())
}

fn record(
    kind: SpanKind,
    cat: &'static str,
    name: impl FnOnce() -> String,
    args: Vec<(&'static str, u64)>,
) {
    if !enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            if col.events.len() >= LANE_CAPACITY {
                col.dropped += 1;
                return;
            }
            let ts_us = col.profiler.inner.epoch.elapsed().as_micros() as u64;
            let seq = col.seq;
            col.seq += 1;
            col.events.push(ProfileEvent {
                seq,
                kind,
                name: name(),
                cat,
                ts_us,
                args,
            });
        }
    });
}

/// Opens a span on the current lane. The name closure runs only when a
/// lane is installed.
pub fn span_begin(cat: &'static str, name: impl FnOnce() -> String) {
    record(SpanKind::Begin, cat, name, Vec::new());
}

/// Closes the innermost open span with this name on the current lane.
pub fn span_end(cat: &'static str, name: impl FnOnce() -> String) {
    record(SpanKind::End, cat, name, Vec::new());
}

/// [`span_end`] with numeric annotations (rows, pages) attached; the
/// args closure also runs only when a lane is installed.
pub fn span_end_with(
    cat: &'static str,
    name: impl FnOnce() -> String,
    args: impl FnOnce() -> Vec<(&'static str, u64)>,
) {
    if !enabled() {
        return;
    }
    record(SpanKind::End, cat, name, args());
}

/// Records a point event (spill run formed, segment boundary, ...).
pub fn instant(cat: &'static str, name: impl FnOnce() -> String) {
    record(SpanKind::Instant, cat, name, Vec::new());
}

/// A finished execution timeline: per-lane event buffers merged in
/// deterministic `(lane, seq)` order.
#[derive(Clone, Debug, Default)]
pub struct ExecutionProfile {
    /// Lanes sorted by id; lane 0 is the coordinator.
    pub lanes: Vec<LaneProfile>,
}

fn escape_json(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl ExecutionProfile {
    /// Total events across all lanes.
    pub fn event_count(&self) -> usize {
        self.lanes.iter().map(|l| l.events.len()).sum()
    }

    /// Total emissions discarded to the per-lane capacity.
    pub fn dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.dropped).sum()
    }

    /// Renders the Chrome trace-event JSON array (the `[{...},...]`
    /// format `chrome://tracing` / Perfetto load). One event object per
    /// line; each lane becomes a `tid` under `pid` 0, named by a
    /// `thread_name` metadata event. Timestamps are the recorded
    /// microseconds-since-epoch values — monotone within a lane.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("[\n");
        let mut first = true;
        let mut push_line = |line: String, first: &mut bool| {
            if !*first {
                out.push_str(",\n");
            }
            out.push_str(&line);
            *first = false;
        };
        for lane in &self.lanes {
            let mut meta = format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"",
                lane.lane
            );
            escape_json(&lane.label, &mut meta);
            meta.push_str("\"}}");
            push_line(meta, &mut first);
            for e in &lane.events {
                let ph = match e.kind {
                    SpanKind::Begin => "B",
                    SpanKind::End => "E",
                    SpanKind::Instant => "i",
                };
                let mut line = String::from("{\"name\":\"");
                escape_json(&e.name, &mut line);
                let _ = write!(
                    line,
                    "\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":0,\"tid\":{}",
                    e.cat, ph, e.ts_us, lane.lane
                );
                if e.kind == SpanKind::Instant {
                    line.push_str(",\"s\":\"t\"");
                }
                if !e.args.is_empty() {
                    line.push_str(",\"args\":{");
                    for (i, (k, v)) in e.args.iter().enumerate() {
                        if i > 0 {
                            line.push(',');
                        }
                        let _ = write!(line, "\"{k}\":{v}");
                    }
                    line.push('}');
                }
                line.push('}');
                push_line(line, &mut first);
            }
        }
        out.push_str("\n]\n");
        out
    }

    /// Renders folded stack lines for flamegraph builders: one line per
    /// distinct span stack, `label;name;name <self-time-us>`, lanes in
    /// id order and stacks in first-appearance order. Self time is the
    /// span's duration minus its children's; instants contribute
    /// nothing. Unbalanced open spans at the end of a lane are dropped.
    pub fn to_folded_stacks(&self) -> String {
        let mut keys: Vec<String> = Vec::new();
        let mut weights: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
        for lane in &self.lanes {
            // (name, begin ts, time consumed by finished children)
            let mut stack: Vec<(String, u64, u64)> = Vec::new();
            let mut prefix = lane.label.clone();
            for e in &lane.events {
                match e.kind {
                    SpanKind::Begin => stack.push((e.name.clone(), e.ts_us, 0)),
                    SpanKind::End => {
                        let Some((name, begin, child)) = stack.pop() else {
                            continue; // unbalanced End: ignore
                        };
                        let total = e.ts_us.saturating_sub(begin);
                        let own = total.saturating_sub(child);
                        if let Some(parent) = stack.last_mut() {
                            parent.2 += total;
                        }
                        let mut key = prefix.clone();
                        for (n, _, _) in &stack {
                            key.push(';');
                            key.push_str(n);
                        }
                        key.push(';');
                        key.push_str(&name);
                        if !weights.contains_key(&key) {
                            keys.push(key.clone());
                        }
                        *weights.entry(key).or_insert(0) += own;
                    }
                    SpanKind::Instant => {}
                }
            }
            prefix.clear();
        }
        let mut out = String::new();
        for key in keys {
            let _ = writeln!(out, "{key} {}", weights[&key]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_thread_records_nothing() {
        assert!(!enabled());
        let mut ran = false;
        span_begin("operator", || {
            ran = true;
            "x".to_string()
        });
        assert!(!ran, "payload closure must not run without a lane");
    }

    #[test]
    fn lanes_merge_by_id_with_per_lane_seq() {
        let p = Profiler::new();
        {
            let _g = p.install_lane("coordinator");
            span_begin("operator", || "sort#0.open".to_string());
            instant("spill", || "spill.run_formed".to_string());
            span_end("operator", || "sort#0.open".to_string());
        }
        let base = p.alloc_lanes(2);
        for k in (0..2).rev() {
            // Install in reverse order: merge must still sort by lane id.
            let _g = p.install_lane_at(base + k, format!("worker p{k}"));
            span_begin("operator", || format!("scan#1.next/p{k}"));
            span_end("operator", || format!("scan#1.next/p{k}"));
        }
        let profile = p.finish();
        assert_eq!(profile.lanes.len(), 3);
        assert_eq!(profile.lanes[0].lane, 0);
        assert_eq!(profile.lanes[0].label, "coordinator");
        assert_eq!(profile.lanes[1].lane, base);
        assert_eq!(profile.lanes[2].lane, base + 1);
        assert_eq!(profile.event_count(), 7);
        for lane in &profile.lanes {
            for (i, e) in lane.events.iter().enumerate() {
                assert_eq!(e.seq, i as u64, "seq must be dense per lane");
            }
            for w in lane.events.windows(2) {
                assert!(w[0].ts_us <= w[1].ts_us, "ts must be monotone per lane");
            }
        }
    }

    #[test]
    fn chrome_trace_is_line_oriented_and_balanced() {
        let p = Profiler::new();
        {
            let _g = p.install_lane("coordinator");
            span_begin("operator", || "sort#0.open".to_string());
            span_begin("operator", || "scan#1.next".to_string());
            span_end_with(
                "operator",
                || "scan#1.next".to_string(),
                || vec![("rows", 5)],
            );
            span_end("operator", || "sort#0.open".to_string());
        }
        let json = p.finish().to_chrome_trace();
        assert!(json.starts_with("[\n"), "{json}");
        assert!(json.trim_end().ends_with(']'), "{json}");
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2, "{json}");
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2, "{json}");
        assert!(json.contains("\"thread_name\""), "{json}");
        assert!(json.contains("\"args\":{\"rows\":5}"), "{json}");
    }

    #[test]
    fn folded_stacks_nest_and_weigh() {
        let p = Profiler::new();
        {
            let _g = p.install_lane("lane");
            span_begin("operator", || "parent".to_string());
            span_begin("operator", || "child".to_string());
            span_end("operator", || "child".to_string());
            span_end("operator", || "parent".to_string());
        }
        let folded = p.finish().to_folded_stacks();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2, "{folded}");
        assert!(lines[0].starts_with("lane;parent;child "), "{folded}");
        assert!(lines[1].starts_with("lane;parent "), "{folded}");
    }

    #[test]
    fn lane_capacity_counts_drops() {
        let p = Profiler::new();
        {
            let _g = p.install_lane("lane");
            for _ in 0..(LANE_CAPACITY + 10) {
                instant("spill", || "x".to_string());
            }
        }
        let profile = p.finish();
        assert_eq!(profile.lanes[0].events.len(), LANE_CAPACITY);
        assert_eq!(profile.dropped(), 10);
    }
}
