//! The metrics registry: named counters, gauges, and log-linear-bucket
//! histograms behind one mutex, with a deterministic text exposition.
//!
//! Counters are exact `u64` sums — the session layer feeds the executor's
//! integer page/row totals straight in, so registry totals reconcile
//! *exactly* (not approximately) with `IoStats`/`PlanMetrics`. Histogram
//! quantiles are bucket upper bounds: with 8 linear sub-buckets per
//! power of two, the relative error of a reported quantile is below
//! 12.5%.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Sub-buckets per power-of-two range (`2^k .. 2^{k+1}` is split into 8
/// equal-width buckets).
const SUB_BUCKETS: u64 = 8;
/// Values below `2^LINEAR_BITS` get one bucket each.
const LINEAR_BITS: u32 = 3;
/// Total bucket count covering the full `u64` range (one group per
/// exponent `LINEAR_BITS..=63`).
const BUCKETS: usize = (SUB_BUCKETS as usize) + (64 - LINEAR_BITS as usize) * 8;

/// A log-linear-bucket histogram over `u64` samples.
///
/// Usable standalone (e.g. by benchmark harnesses) or inside a
/// [`Registry`].
#[derive(Clone, Debug)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The bucket index a value lands in.
fn bucket_index(v: u64) -> usize {
    if v < (1 << LINEAR_BITS) {
        return v as usize;
    }
    let p = 63 - v.leading_zeros(); // floor(log2 v), >= LINEAR_BITS
    let group = (p - LINEAR_BITS) as usize;
    let sub = ((v >> (p - LINEAR_BITS)) - SUB_BUCKETS) as usize;
    (1 << LINEAR_BITS) + group * SUB_BUCKETS as usize + sub
}

/// The largest value contained in bucket `idx` (inclusive).
fn bucket_upper(idx: usize) -> u64 {
    if idx < (1 << LINEAR_BITS) {
        return idx as u64;
    }
    let rel = idx - (1 << LINEAR_BITS);
    let group = (rel / SUB_BUCKETS as usize) as u32;
    let sub = (rel % SUB_BUCKETS as usize) as u64;
    let p = group + LINEAR_BITS;
    let width = 1u64 << (p - LINEAR_BITS);
    // Summed in this order to avoid overflow in the topmost bucket.
    (1u64 << p) + sub * width + (width - 1)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]`, reported as the upper bound
    /// of the bucket holding the rank-`⌈q·n⌉` sample (clamped to the
    /// observed min/max). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// A point-in-time copy of the derived statistics.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Derived statistics of one histogram at snapshot time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Exact sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 95th percentile (bucket upper bound).
    pub p95: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A process-wide metrics registry. Cheap to share behind an `Arc`;
/// every operation takes one short-lived mutex.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `delta` to the named counter (creating it at 0).
    pub fn add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Adds 1 to the named counter.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Sets the named gauge.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.gauges.insert(name.to_string(), value);
    }

    /// Records one sample into the named histogram (creating it empty).
    pub fn observe(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("registry poisoned");
        inner.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        let inner = self.inner.lock().expect("registry poisoned");
        inner.gauges.get(name).copied()
    }

    /// Snapshot of a histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        let inner = self.inner.lock().expect("registry poisoned");
        inner.histograms.get(name).map(Histogram::snapshot)
    }

    /// Deterministic text exposition: one line per metric, sorted by
    /// kind then name.
    pub fn expose(&self) -> String {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut out = String::new();
        for (name, v) in &inner.counters {
            let _ = writeln!(out, "counter {name} {v}");
        }
        for (name, v) in &inner.gauges {
            let _ = writeln!(out, "gauge {name} {v}");
        }
        for (name, h) in &inner.histograms {
            let s = h.snapshot();
            let _ = writeln!(
                out,
                "histogram {name} count={} sum={} min={} max={} p50={} p95={} p99={}",
                s.count, s.sum, s.min, s.max, s.p50, s.p95, s.p99
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_continuous_and_monotonic() {
        // Every value maps to a bucket whose upper bound is >= the value,
        // and indices never decrease as values grow.
        let mut prev_idx = 0usize;
        for v in 0u64..4096 {
            let idx = bucket_index(v);
            assert!(idx >= prev_idx, "index regressed at {v}");
            assert!(bucket_upper(idx) >= v, "upper({idx}) < {v}");
            if idx > 0 {
                assert!(bucket_upper(idx - 1) < v, "value {v} fits earlier bucket");
            }
            prev_idx = idx;
        }
        // Spot-check huge values don't panic and stay in range.
        for v in [u64::MAX, u64::MAX / 3, 1 << 60] {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS);
            assert!(bucket_upper(idx) >= v);
        }
    }

    #[test]
    fn quantiles_bound_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        for (q, exact) in [(0.5, 500u64), (0.95, 950), (0.99, 990)] {
            let got = h.quantile(q);
            assert!(got >= exact, "q{q}: {got} < exact {exact}");
            assert!(
                (got as f64) <= exact as f64 * 1.125 + 1.0,
                "q{q}: {got} too far above {exact}"
            );
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s, HistogramSnapshot::default());
    }

    #[test]
    fn registry_counters_are_exact_and_exposition_is_sorted() {
        let r = Registry::new();
        r.add("b.pages", 7);
        r.inc("a.queries");
        r.inc("a.queries");
        r.set_gauge("scale", 0.01);
        r.observe("latency_us", 100);
        r.observe("latency_us", 300);
        assert_eq!(r.counter("a.queries"), 2);
        assert_eq!(r.counter("b.pages"), 7);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("scale"), Some(0.01));
        let h = r.histogram("latency_us").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 400);
        let text = r.expose();
        let a = text.find("counter a.queries 2").unwrap();
        let b = text.find("counter b.pages 7").unwrap();
        assert!(a < b, "{text}");
        assert!(text.contains("gauge scale 0.01"), "{text}");
        assert!(
            text.contains("histogram latency_us count=2 sum=400"),
            "{text}"
        );
    }

    #[test]
    fn exposition_is_fully_sorted_regardless_of_registration_order() {
        // Register a larger name set in scrambled order and require the
        // exposition to list every kind in sorted name order, so REPL
        // smokes and snapshot diffs never depend on insertion order.
        let r = Registry::new();
        for name in ["zeta.c", "alpha.c", "mid.c", "beta.c", "omega.c"] {
            r.inc(name);
        }
        for name in ["z.gauge", "a.gauge", "m.gauge"] {
            r.set_gauge(name, 1.0);
        }
        for name in ["z.hist", "a.hist", "m.hist"] {
            r.observe(name, 5);
        }
        let text = r.expose();
        for (kind, names) in [
            (
                "counter",
                vec!["alpha.c", "beta.c", "mid.c", "omega.c", "zeta.c"],
            ),
            ("gauge", vec!["a.gauge", "m.gauge", "z.gauge"]),
            ("histogram", vec!["a.hist", "m.hist", "z.hist"]),
        ] {
            let listed: Vec<&str> = text
                .lines()
                .filter(|l| l.starts_with(kind))
                .map(|l| l.split_whitespace().nth(1).unwrap())
                .collect();
            assert_eq!(listed, names, "{kind} lines out of order:\n{text}");
        }
        // Deterministic end to end: a second exposition is byte-identical.
        assert_eq!(text, r.expose());
    }
}
