//! The structured trace collector.
//!
//! A [`TraceGuard`] installs a collector on the **current thread**; while
//! it is installed, [`emit`] records [`TraceEvent`]s into a bounded ring
//! buffer (oldest events are dropped first and counted). With no guard
//! installed, [`emit`] is a single thread-local flag check and the event
//! closure never runs — instrumented code pays nothing when tracing is
//! off.
//!
//! Payloads are plain pre-rendered strings: the emitting layer formats
//! its domain objects (order specifications, plan descriptions) at the
//! emission site, keeping this crate dependency-free. All counts in
//! [`TraceCounts`] are maintained at emission time, so they stay exact
//! even when the ring drops events.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Default ring capacity installed by [`TraceGuard::install`] callers
/// that have no better idea; large enough that a full TPC-D Q3
/// enumeration fits without drops.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// One typed optimizer-trace event. String payloads are rendered by the
/// emitter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A nesting scope opened (e.g. "box b0 (select)").
    SpanStart {
        /// Scope label.
        name: String,
    },
    /// The matching scope closed.
    SpanEnd {
        /// Scope label (same as the opening event).
        name: String,
    },
    /// The planner produced a candidate plan.
    PlanGenerated {
        /// Which enumeration stage produced it ("access", "join", ...).
        stage: &'static str,
        /// Description of the plan: operator, cost, rows, order property.
        plan: String,
    },
    /// A candidate was discarded by cost + property dominance pruning.
    PlanPruned {
        /// The discarded plan.
        loser: String,
        /// The surviving plan that dominates it (at most as expensive,
        /// at least as good on every property dimension).
        winner: String,
    },
    /// A sort enforcer was added to a plan.
    SortAdded {
        /// The (minimal, reduced) sort specification.
        spec: String,
        /// The plan being sorted.
        input: String,
    },
    /// An order requirement was satisfied by an existing order property —
    /// the paper's payoff: no sort needed.
    SortAvoided {
        /// The requirement that was tested.
        requirement: String,
        /// The order property that satisfied it.
        order: String,
    },
    /// The planner replaced a full sort with a segmented (partial) sort:
    /// the input's order property already satisfies a prefix of the
    /// requirement, so only the residual suffix is sorted, within each
    /// prefix group.
    PartialSortChosen {
        /// The satisfied prefix of the (reduced) requirement.
        prefix: String,
        /// The residual suffix the segmented sort enforces per group.
        suffix: String,
        /// Estimated number of prefix groups (from distinct-value stats).
        groups: u64,
    },
    /// A sort-ahead variant was generated for an interesting order.
    SortAhead {
        /// The interesting order being pushed down.
        interest: String,
        /// The resulting sorted plan.
        plan: String,
    },
    /// A *Reduce Order* call (paper Fig. 2).
    Reduce {
        /// Specification before reduction.
        before: String,
        /// Canonical (minimal) specification after reduction.
        after: String,
    },
    /// A *Test Order* call (paper Fig. 3).
    TestOrder {
        /// The interesting order tested.
        interest: String,
        /// The order property tested against.
        property: String,
        /// Whether the property satisfies the interest.
        satisfied: bool,
    },
    /// A *Cover Order* call (paper Fig. 4).
    Cover {
        /// First interesting order.
        i1: String,
        /// Second interesting order.
        i2: String,
        /// The covering specification, if one exists.
        cover: Option<String>,
    },
    /// A *Homogenize Order* call (paper Fig. 5).
    Homogenize {
        /// The interesting order being rewritten.
        interest: String,
        /// The rewritten order over the target columns, if it exists.
        result: Option<String>,
    },
    /// Free-form annotation.
    Note {
        /// The annotation text.
        text: String,
    },
}

/// Exact per-kind event counts, maintained at emission time (immune to
/// ring-buffer drops).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCounts {
    /// Spans opened.
    pub spans: u64,
    /// Candidate plans generated.
    pub plans_generated: u64,
    /// Plans discarded by dominance pruning.
    pub plans_pruned: u64,
    /// Sort enforcers added.
    pub sorts_added: u64,
    /// Sorts avoided via order properties.
    pub sorts_avoided: u64,
    /// Full sorts downgraded to segmented (partial) sorts.
    pub partial_sorts: u64,
    /// Sort-ahead variants generated.
    pub sort_ahead: u64,
    /// Reduce Order calls.
    pub reduce: u64,
    /// Test Order calls.
    pub test_order: u64,
    /// Cover Order calls.
    pub cover: u64,
    /// Homogenize Order calls.
    pub homogenize: u64,
    /// Free-form notes.
    pub notes: u64,
}

impl TraceCounts {
    fn bump(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::SpanStart { .. } => self.spans += 1,
            TraceEvent::SpanEnd { .. } => {}
            TraceEvent::PlanGenerated { .. } => self.plans_generated += 1,
            TraceEvent::PlanPruned { .. } => self.plans_pruned += 1,
            TraceEvent::SortAdded { .. } => self.sorts_added += 1,
            TraceEvent::SortAvoided { .. } => self.sorts_avoided += 1,
            TraceEvent::PartialSortChosen { .. } => self.partial_sorts += 1,
            TraceEvent::SortAhead { .. } => self.sort_ahead += 1,
            TraceEvent::Reduce { .. } => self.reduce += 1,
            TraceEvent::TestOrder { .. } => self.test_order += 1,
            TraceEvent::Cover { .. } => self.cover += 1,
            TraceEvent::Homogenize { .. } => self.homogenize += 1,
            TraceEvent::Note { .. } => self.notes += 1,
        }
    }
}

/// A finished trace: the retained events (ring-bounded), how many were
/// dropped, and the exact per-kind counts.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Retained events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events dropped because the ring was full (oldest first).
    pub dropped: u64,
    /// Exact per-kind counts (drop-immune).
    pub counts: TraceCounts,
}

impl Trace {
    /// Renders the trace as indented text: spans nest, plan/sort events
    /// print one line each. The high-volume order-operation events
    /// ([`TraceEvent::Reduce`], [`TraceEvent::TestOrder`],
    /// [`TraceEvent::Cover`], [`TraceEvent::Homogenize`]) are summarized
    /// by [`Trace::summary`] rather than printed individually; they
    /// remain available in [`Trace::events`] (see [`Trace::render_full`]).
    pub fn render(&self) -> String {
        self.render_impl(false)
    }

    /// [`Trace::render`] including one line per order-operation call.
    pub fn render_full(&self) -> String {
        self.render_impl(true)
    }

    fn render_impl(&self, verbose: bool) -> String {
        let mut out = String::new();
        let mut depth = 0usize;
        for event in &self.events {
            if matches!(event, TraceEvent::SpanEnd { .. }) {
                depth = depth.saturating_sub(1);
                continue;
            }
            let pad = "  ".repeat(depth);
            match event {
                TraceEvent::SpanStart { name } => {
                    let _ = writeln!(out, "{pad}{name}");
                    depth += 1;
                }
                TraceEvent::SpanEnd { .. } => unreachable!("handled above"),
                TraceEvent::PlanGenerated { stage, plan } => {
                    let _ = writeln!(out, "{pad}plan[{stage}]: {plan}");
                }
                TraceEvent::PlanPruned { loser, winner } => {
                    let _ = writeln!(out, "{pad}pruned: {loser} -- dominated by {winner}");
                }
                TraceEvent::SortAdded { spec, input } => {
                    let _ = writeln!(out, "{pad}sort added on {spec} over {input}");
                }
                TraceEvent::SortAvoided { requirement, order } => {
                    let _ = writeln!(
                        out,
                        "{pad}sort avoided: requirement {requirement} satisfied by order {order}"
                    );
                }
                TraceEvent::PartialSortChosen {
                    prefix,
                    suffix,
                    groups,
                } => {
                    let _ = writeln!(
                        out,
                        "{pad}PartialSortChosen: prefix {prefix} satisfied, \
                         sorting {suffix} within ~{groups} groups"
                    );
                }
                TraceEvent::SortAhead { interest, plan } => {
                    let _ = writeln!(out, "{pad}sort-ahead for {interest}: {plan}");
                }
                TraceEvent::Reduce { before, after } => {
                    if verbose {
                        let _ = writeln!(out, "{pad}reduce {before} => {after}");
                    }
                }
                TraceEvent::TestOrder {
                    interest,
                    property,
                    satisfied,
                } => {
                    if verbose {
                        let verdict = if *satisfied {
                            "satisfied"
                        } else {
                            "not satisfied"
                        };
                        let _ = writeln!(out, "{pad}test {interest} against {property}: {verdict}");
                    }
                }
                TraceEvent::Cover { i1, i2, cover } => {
                    if verbose {
                        let c = cover.as_deref().unwrap_or("<none>");
                        let _ = writeln!(out, "{pad}cover {i1} + {i2} => {c}");
                    }
                }
                TraceEvent::Homogenize { interest, result } => {
                    if verbose {
                        let r = result.as_deref().unwrap_or("<none>");
                        let _ = writeln!(out, "{pad}homogenize {interest} => {r}");
                    }
                }
                TraceEvent::Note { text } => {
                    let _ = writeln!(out, "{pad}note: {text}");
                }
            }
        }
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "... {} earlier events dropped (ring full)",
                self.dropped
            );
        }
        out
    }

    /// The enumeration summary: boxes planned, plans generated/kept/
    /// pruned, sorts added vs avoided, sort-ahead variants, and the
    /// order-operation call counts.
    pub fn summary(&self) -> String {
        let c = &self.counts;
        let kept = c.plans_generated.saturating_sub(c.plans_pruned);
        format!(
            "summary: boxes={} | plans generated={} kept<={} pruned={} | \
             sorts added={} avoided={} segmented={} | sort-ahead variants={}\n\
             order ops: reduce={} test={} cover={} homogenize={}\n",
            c.spans,
            c.plans_generated,
            kept,
            c.plans_pruned,
            c.sorts_added,
            c.sorts_avoided,
            c.partial_sorts,
            c.sort_ahead,
            c.reduce,
            c.test_order,
            c.cover,
            c.homogenize,
        )
    }
}

struct Collector {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    counts: TraceCounts,
}

impl Collector {
    fn record(&mut self, event: TraceEvent) {
        self.counts.bump(&event);
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event);
    }

    fn finish(self) -> Trace {
        Trace {
            events: self.ring.into(),
            dropped: self.dropped,
            counts: self.counts,
        }
    }
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static RECORDED: Cell<u64> = const { Cell::new(0) };
}

/// Is a trace collector installed on the current thread?
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Records an event if (and only if) tracing is enabled on this thread.
/// The closure — and therefore all payload formatting — runs only on the
/// enabled path.
pub fn emit<F: FnOnce() -> TraceEvent>(f: F) {
    if !enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(collector) = c.borrow_mut().as_mut() {
            RECORDED.with(|r| r.set(r.get() + 1));
            collector.record(f());
        }
    });
}

/// Emits a [`TraceEvent::SpanStart`], returning a guard that emits the
/// matching [`TraceEvent::SpanEnd`] on drop. Free when tracing is off
/// (the name closure never runs).
pub fn span<F: FnOnce() -> String>(name: F) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name: None };
    }
    let name = name();
    emit(|| TraceEvent::SpanStart { name: name.clone() });
    SpanGuard { name: Some(name) }
}

/// Closes its span on drop (see [`span`]).
pub struct SpanGuard {
    name: Option<String>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            emit(|| TraceEvent::SpanEnd { name });
        }
    }
}

/// Total events ever recorded on the **current thread**. The disabled-
/// path regression test uses this to prove that running a workload
/// without a collector records nothing.
pub fn events_recorded() -> u64 {
    RECORDED.with(|r| r.get())
}

/// Installs a trace collector on the current thread; collection stops
/// and the trace is returned by [`TraceGuard::finish`]. Guards nest: a
/// newly installed guard shelves the previous collector and restores it
/// when finished or dropped.
pub struct TraceGuard {
    prev: Option<Collector>,
    prev_enabled: bool,
    finished: bool,
}

impl TraceGuard {
    /// Starts collecting on this thread into a ring of at most
    /// `capacity` events.
    pub fn install(capacity: usize) -> TraceGuard {
        let fresh = Collector {
            ring: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
            counts: TraceCounts::default(),
        };
        let prev = COLLECTOR.with(|c| c.borrow_mut().replace(fresh));
        let prev_enabled = ENABLED.with(|e| e.replace(true));
        TraceGuard {
            prev,
            prev_enabled,
            finished: false,
        }
    }

    /// Stops collecting and returns the trace, restoring whatever
    /// collector (if any) was active before this guard.
    pub fn finish(mut self) -> Trace {
        self.finished = true;
        let collector = self.restore();
        collector.map(Collector::finish).unwrap_or_default()
    }

    fn restore(&mut self) -> Option<Collector> {
        let current = COLLECTOR.with(|c| std::mem::replace(&mut *c.borrow_mut(), self.prev.take()));
        ENABLED.with(|e| e.set(self.prev_enabled));
        current
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.restore();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing_and_runs_no_closures() {
        assert!(!enabled());
        let before = events_recorded();
        let mut ran = false;
        emit(|| {
            ran = true;
            TraceEvent::Note { text: "x".into() }
        });
        assert!(!ran);
        assert_eq!(events_recorded(), before);
    }

    #[test]
    fn guard_collects_and_counts() {
        let guard = TraceGuard::install(16);
        emit(|| TraceEvent::PlanGenerated {
            stage: "access",
            plan: "scan cost=1.0".into(),
        });
        emit(|| TraceEvent::PlanPruned {
            loser: "a".into(),
            winner: "b".into(),
        });
        {
            let _s = span(|| "box b0 (select)".to_string());
            emit(|| TraceEvent::SortAdded {
                spec: "(c1)".into(),
                input: "scan".into(),
            });
        }
        let trace = guard.finish();
        assert_eq!(trace.counts.plans_generated, 1);
        assert_eq!(trace.counts.plans_pruned, 1);
        assert_eq!(trace.counts.sorts_added, 1);
        assert_eq!(trace.counts.spans, 1);
        assert_eq!(trace.dropped, 0);
        let text = trace.render();
        assert!(text.contains("plan[access]"), "{text}");
        assert!(text.contains("pruned: a -- dominated by b"), "{text}");
        // The sort event is indented under the span.
        assert!(text.contains("\n  sort added"), "{text}");
        assert!(!enabled());
    }

    #[test]
    fn partial_sort_event_renders_and_counts() {
        let guard = TraceGuard::install(16);
        emit(|| TraceEvent::PartialSortChosen {
            prefix: "(c1)".into(),
            suffix: "(c2)".into(),
            groups: 42,
        });
        let trace = guard.finish();
        assert_eq!(trace.counts.partial_sorts, 1);
        let text = trace.render();
        assert!(
            text.contains("PartialSortChosen: prefix (c1) satisfied"),
            "{text}"
        );
        assert!(text.contains("~42 groups"), "{text}");
        assert!(
            trace.summary().contains("segmented=1"),
            "{}",
            trace.summary()
        );
    }

    #[test]
    fn ring_drops_oldest_and_keeps_exact_counts() {
        let guard = TraceGuard::install(4);
        for i in 0..10 {
            emit(|| TraceEvent::Note {
                text: format!("n{i}"),
            });
        }
        let trace = guard.finish();
        assert_eq!(trace.events.len(), 4);
        assert_eq!(trace.dropped, 6);
        assert_eq!(trace.counts.notes, 10);
        assert_eq!(trace.events[0], TraceEvent::Note { text: "n6".into() });
        assert!(trace.render().contains("6 earlier events dropped"));
    }

    #[test]
    fn guards_nest_and_restore() {
        let outer = TraceGuard::install(16);
        emit(|| TraceEvent::Note {
            text: "outer".into(),
        });
        {
            let inner = TraceGuard::install(16);
            emit(|| TraceEvent::Note {
                text: "inner".into(),
            });
            let t = inner.finish();
            assert_eq!(t.counts.notes, 1);
        }
        emit(|| TraceEvent::Note {
            text: "outer2".into(),
        });
        let t = outer.finish();
        assert_eq!(t.counts.notes, 2);
        assert!(!enabled());
    }

    #[test]
    fn render_summarizes_order_ops_unless_verbose() {
        let guard = TraceGuard::install(16);
        emit(|| TraceEvent::Reduce {
            before: "(c1, c2)".into(),
            after: "(c1)".into(),
        });
        emit(|| TraceEvent::TestOrder {
            interest: "(c1)".into(),
            property: "(c1, c3)".into(),
            satisfied: true,
        });
        let trace = guard.finish();
        let brief = trace.render();
        assert!(!brief.contains("reduce"), "{brief}");
        let full = trace.render_full();
        assert!(full.contains("reduce (c1, c2) => (c1)"), "{full}");
        assert!(
            full.contains("test (c1) against (c1, c3): satisfied"),
            "{full}"
        );
        assert!(
            trace.summary().contains("reduce=1 test=1"),
            "{}",
            trace.summary()
        );
    }
}
