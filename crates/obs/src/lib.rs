//! Engine-wide observability primitives, dependency-free by design so
//! every layer of the stack (order reasoning, planner, executor,
//! session) can emit into them without dependency cycles.
//!
//! Three building blocks:
//!
//! * [`trace`] — a structured trace collector: typed events and spans
//!   recorded into a bounded ring buffer. Collection is **thread-local**
//!   and strictly opt-in: until a [`trace::TraceGuard`] is installed on
//!   the current thread every emission is a single branch on a
//!   thread-local flag, and event payloads are built inside closures
//!   that never run. The planner uses this to narrate its decisions
//!   (`EXPLAIN OPTIMIZER`).
//! * [`metrics`] — a process-wide metrics registry: named counters,
//!   gauges and log-linear-bucket histograms with a deterministic text
//!   exposition ([`metrics::Registry::expose`]). The session layer feeds
//!   per-query latency/rows/pages into it; totals reconcile exactly with
//!   the executor's own accounting.
//! * [`slowlog`] — a bounded log of the slowest queries, each entry
//!   carrying the SQL, the annotated plan, and the optimizer trace that
//!   produced it.
//! * [`profile`] — an opt-in execution timeline profiler: span/instant
//!   events buffered per worker lane, merged deterministically by
//!   (lane, seq), exported as Chrome trace-event JSON and folded stacks.
//!   Unlike [`trace`], profile events carry timestamps — which is why
//!   they live in their own buffers and never enter the optimizer trace.

#![deny(missing_docs)]

pub mod metrics;
pub mod profile;
pub mod slowlog;
pub mod trace;

pub use metrics::{HistogramSnapshot, Registry};
pub use profile::{ExecutionProfile, LaneGuard, LaneProfile, ProfileEvent, Profiler, SpanKind};
pub use slowlog::{SlowQuery, SlowQueryLog};
pub use trace::{Trace, TraceCounts, TraceEvent, TraceGuard};
