//! A bounded log of the slowest queries.
//!
//! The session layer decides *what* counts as slow (its configured
//! latency threshold, or a per-operator cardinality Q-error over the
//! misestimation threshold — a badly estimated query is a latent slow
//! query even when it happens to run fast) and records offenders here,
//! each with the artefacts needed to diagnose it after the fact: the
//! SQL text, the annotated plan, the worst-estimated operator, and the
//! optimizer trace that chose the plan. The log keeps the most recent
//! `capacity` entries.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Duration;

/// One slow-query record.
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// The SQL text, when known (prepared-by-AST queries have none).
    pub sql: Option<String>,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Rows returned.
    pub rows: u64,
    /// The annotated plan (estimates + actuals when available).
    pub plan: String,
    /// The rendered optimizer trace, empty when planning was not traced.
    pub trace: String,
    /// The worst per-operator cardinality Q-error
    /// (`max(est, act) / min(est, act)`, both clamped to ≥ 1), or 1.0
    /// when no per-operator metrics were available.
    pub max_qerror: f64,
    /// The operator behind `max_qerror`, rendered as
    /// `name#id est=… act=…`, when per-operator metrics were available.
    pub worst_operator: Option<String>,
}

#[derive(Default)]
struct Inner {
    entries: VecDeque<SlowQuery>,
    total: u64,
}

/// The bounded slow-query log (newest entries win).
pub struct SlowQueryLog {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl SlowQueryLog {
    /// A log retaining at most `capacity` entries.
    pub fn new(capacity: usize) -> SlowQueryLog {
        SlowQueryLog {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Appends an entry, evicting the oldest when full.
    pub fn record(&self, entry: SlowQuery) {
        let mut inner = self.inner.lock().expect("slow log poisoned");
        inner.total += 1;
        if self.capacity == 0 {
            return;
        }
        if inner.entries.len() == self.capacity {
            inner.entries.pop_front();
        }
        inner.entries.push_back(entry);
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQuery> {
        let inner = self.inner.lock().expect("slow log poisoned");
        inner.entries.iter().cloned().collect()
    }

    /// How many slow queries were ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        let inner = self.inner.lock().expect("slow log poisoned");
        inner.total
    }

    /// Renders the retained entries as text (newest last).
    pub fn render(&self) -> String {
        let entries = self.entries();
        if entries.is_empty() {
            return "slow-query log is empty\n".to_string();
        }
        let mut out = String::new();
        for (i, e) in entries.iter().enumerate() {
            let _ = writeln!(
                out,
                "-- slow query {} of {}: {:.1?}, {} rows --",
                i + 1,
                entries.len(),
                e.elapsed,
                e.rows
            );
            let _ = writeln!(out, "sql: {}", e.sql.as_deref().unwrap_or("<prepared>"));
            if let Some(worst) = &e.worst_operator {
                let _ = writeln!(out, "worst estimate: {} (q-err {:.2})", worst, e.max_qerror);
            }
            out.push_str(&e.plan);
            if !e.plan.ends_with('\n') {
                out.push('\n');
            }
            if !e.trace.is_empty() {
                out.push_str("optimizer trace:\n");
                out.push_str(&e.trace);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tag: &str) -> SlowQuery {
        SlowQuery {
            sql: Some(format!("select {tag}")),
            elapsed: Duration::from_millis(150),
            rows: 3,
            plan: format!("plan-{tag}"),
            trace: String::new(),
            max_qerror: 1.0,
            worst_operator: None,
        }
    }

    #[test]
    fn keeps_newest_entries_and_counts_all() {
        let log = SlowQueryLog::new(2);
        log.record(entry("a"));
        log.record(entry("b"));
        log.record(entry("c"));
        let kept = log.entries();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].sql.as_deref(), Some("select b"));
        assert_eq!(kept[1].sql.as_deref(), Some("select c"));
        assert_eq!(log.total_recorded(), 3);
        let text = log.render();
        assert!(text.contains("select c"), "{text}");
        assert!(!text.contains("select a"), "{text}");
    }

    #[test]
    fn empty_log_renders_placeholder() {
        let log = SlowQueryLog::new(4);
        assert!(log.render().contains("empty"));
    }

    #[test]
    fn worst_operator_renders_when_present() {
        let log = SlowQueryLog::new(4);
        let mut e = entry("q");
        e.max_qerror = 12.5;
        e.worst_operator = Some("filter#1 est=3.9 act=49".to_string());
        log.record(e);
        let text = log.render();
        assert!(
            text.contains("worst estimate: filter#1 est=3.9 act=49 (q-err 12.50)"),
            "{text}"
        );
    }
}
