//! The top-down **order scan** of QGM (paper §5.1).
//!
//! Interesting orders are generated before cost-based planning:
//!
//! 1. input/output order *requirements* are determined per box (ORDER BY
//!    gives an output requirement; order-based GROUP BY gives an input
//!    requirement, represented with §7 degrees of freedom);
//! 2. interesting orders for DISTINCT boxes are determined;
//! 3. interesting orders for merge-joins are determined from equi-join
//!    predicates;
//! 4. the graph is traversed top-down, pushing interesting orders along
//!    quantifier arcs — homogenizing them to the columns available below
//!    each arc and covering them with the target's own requirements — so
//!    that a single sort low in the plan can satisfy several operations
//!    high in the plan (*sort-ahead*).
//!
//! The scan is *optimistic* (paper §5.1): it reasons with the equivalence
//! classes and functional dependencies of **all** predicates of the query,
//! assuming everything below a box has been applied; if full
//! homogenization fails, the largest homogenizable prefix is pushed in the
//! hope that an FD discovered during planning makes the suffix redundant.
//! The planning phase re-checks every assumption against the real stream
//! properties before relying on an order.

use crate::graph::{BoxKind, OutputExpr, QuantifierInput, QueryGraph};
use fto_catalog::Catalog;
use fto_common::ColSet;
use fto_expr::PredClass;
use fto_order::{EquivalenceClasses, FdSet, FlexOrder, OrderContext, OrderSpec};

/// Builds the query-global optimistic [`OrderContext`]: equivalences and
/// constants from *every* predicate, plus functional dependencies from
/// base-table keys, computed outputs, and group-by boxes.
pub fn global_context(graph: &QueryGraph, catalog: &Catalog) -> OrderContext {
    let mut eq = EquivalenceClasses::new();
    let mut fds = FdSet::new();

    // ON predicates of outer joins must not feed equivalence classes or
    // constants: null-padded rows violate them (paper §4.1). Collect
    // their ids first and skip them in the global predicate sweep; the
    // box loop below adds their one-directional FDs instead.
    let mut outer_on = std::collections::HashSet::new();
    for qbox in &graph.boxes {
        if let BoxKind::OuterJoin { on } = &qbox.kind {
            outer_on.extend(on.iter().copied());
        }
    }
    for (i, pred) in graph.predicates.iter().enumerate() {
        if outer_on.contains(&fto_expr::PredId(i as u32)) {
            continue;
        }
        match pred.classify() {
            PredClass::ColEqCol(a, b) => {
                eq.merge(a, b);
                fds.add_equivalence(a, b);
            }
            PredClass::ColEqConst(c, v) => {
                eq.bind_constant(c, v);
                fds.add_constant(c);
            }
            PredClass::Opaque => {}
        }
    }

    for qbox in &graph.boxes {
        for q in &qbox.quantifiers {
            if let QuantifierInput::Table(tid) = q.input {
                let Ok(table) = catalog.table(tid) else {
                    continue;
                };
                let all: ColSet = q.cols.iter().copied().collect();
                for key in &table.keys {
                    let head: ColSet = key.columns.iter().map(|&o| q.cols[o]).collect();
                    fds.add_key(head, all.clone());
                }
                for ix in catalog.indexes_for(tid).filter(|ix| ix.unique) {
                    let head: ColSet = ix.key_ordinals().map(|o| q.cols[o]).collect();
                    fds.add_key(head, all.clone());
                }
            }
        }
        match &qbox.kind {
            BoxKind::GroupBy { grouping } => {
                let head: ColSet = grouping.iter().copied().collect();
                let tail = qbox.output_col_set();
                fds.add_key(head, tail);
            }
            BoxKind::Select | BoxKind::Union => {
                for out in &qbox.output {
                    if let OutputExpr::Scalar(e) = &out.expr {
                        if e.as_col() != Some(out.col) {
                            // A computed value is a function of its inputs.
                            fds.add(fto_order::Fd::new(e.cols(), ColSet::singleton(out.col)));
                        }
                    }
                }
            }
            BoxKind::OuterJoin { on } => {
                // §4.1: for an outer-join predicate x = y, {x} → {y}
                // holds only when x comes from the non-null-supplying
                // (preserved) side — and no equivalence class forms.
                let preserved: ColSet = qbox
                    .quantifiers
                    .first()
                    .map(|q| q.cols.iter().copied().collect())
                    .unwrap_or_default();
                for &pid in on {
                    if let PredClass::ColEqCol(a, b) = graph.predicate(pid).classify() {
                        if preserved.contains(a) {
                            fds.add(fto_order::Fd::implies(a, b));
                        } else if preserved.contains(b) {
                            fds.add(fto_order::Fd::implies(b, a));
                        }
                    }
                }
            }
        }
    }

    OrderContext::new(eq, &fds)
}

/// The order scan pass.
pub struct OrderScan {
    ctx: OrderContext,
}

impl OrderScan {
    /// Runs the scan, mutating the graph in place: every box ends up with
    /// its `group_order` requirement (stages 1–2) and its list of
    /// interesting / sort-ahead orders (stages 3–4). Returns the global
    /// optimistic context so the planner can reuse it.
    pub fn run(graph: &mut QueryGraph, catalog: &Catalog) -> OrderContext {
        let scan = OrderScan {
            ctx: global_context(graph, catalog),
        };
        scan.stage1_and_2_requirements(graph);
        scan.stage3_merge_join_orders(graph);
        scan.stage4_push_down(graph);
        scan.ctx
    }

    /// Stages 1–2: order requirements for GROUP BY and DISTINCT, in the
    /// generalized (§7) representation.
    fn stage1_and_2_requirements(&self, graph: &mut QueryGraph) {
        for qbox in &mut graph.boxes {
            match &qbox.kind {
                BoxKind::GroupBy { grouping } => {
                    let distinct_args: Vec<_> = qbox
                        .output
                        .iter()
                        .filter_map(|o| match &o.expr {
                            OutputExpr::Agg(call) if call.distinct => call.arg.as_col(),
                            _ => None,
                        })
                        .collect();
                    qbox.group_order =
                        Some(FlexOrder::group_by(grouping.iter().copied(), distinct_args));
                }
                BoxKind::Select | BoxKind::Union if qbox.distinct => {
                    qbox.group_order =
                        Some(FlexOrder::group_by(qbox.output.iter().map(|o| o.col), []));
                }
                _ => {}
            }
        }
    }

    /// Stage 3: each cross-quantifier equi-join predicate makes the order
    /// on either side's column interesting (a merge-join could consume
    /// it).
    fn stage3_merge_join_orders(&self, graph: &mut QueryGraph) {
        for bi in 0..graph.boxes.len() {
            if graph.boxes[bi].quantifiers.len() < 2 {
                continue;
            }
            let pred_ids = graph.boxes[bi].predicates.clone();
            for pid in pred_ids {
                if let PredClass::ColEqCol(a, b) = graph.predicate(pid).classify() {
                    let qbox = &graph.boxes[bi];
                    let qa = qbox.quantifiers.iter().position(|q| q.cols.contains(&a));
                    let qb = qbox.quantifiers.iter().position(|q| q.cols.contains(&b));
                    if let (Some(qa), Some(qb)) = (qa, qb) {
                        if qa != qb {
                            let qbox = &mut graph.boxes[bi];
                            qbox.add_interesting(OrderSpec::ascending([a]));
                            qbox.add_interesting(OrderSpec::ascending([b]));
                        }
                    }
                }
            }
        }
    }

    /// Stage 4: top-down push along quantifier arcs.
    fn stage4_push_down(&self, graph: &mut QueryGraph) {
        // Root-first order = reverse of bottom-up.
        let mut order = graph.bottom_up();
        order.reverse();

        for box_id in order {
            // Collect what this box wants of its own output.
            let mut pushing: Vec<OrderSpec> = Vec::new();
            {
                let qbox = graph.boxed(box_id);
                if let Some(req) = &qbox.output_order {
                    pushing.push(self.ctx.reduce(req));
                }
                for i in &qbox.interesting {
                    let r = self.ctx.reduce(i);
                    if !r.is_empty() && !pushing.contains(&r) {
                        pushing.push(r);
                    }
                }
            }

            // A GROUP BY / DISTINCT requirement intercepts the push: try
            // to cover each pushed order with the generalized requirement
            // so one sort below the box serves both; always push the
            // requirement itself as well.
            if let Some(flex) = graph.boxed(box_id).group_order.clone() {
                let mut below: Vec<OrderSpec> = Vec::new();
                for o in &pushing {
                    let combined = flex.concretize(o, &self.ctx);
                    if self.ctx.test_order(o, &combined) {
                        below.push(combined);
                    }
                }
                let own = flex.concretize(&OrderSpec::empty(), &self.ctx);
                if !own.is_empty() && !below.contains(&own) {
                    below.push(own);
                }
                pushing = below;
            }

            // Record the box's final interesting-order list (reduced,
            // covered where possible).
            {
                let merged = merge_covers(&self.ctx, pushing.clone());
                let qbox = graph.boxed_mut(box_id);
                qbox.interesting.clear();
                for o in merged {
                    qbox.add_interesting(o);
                }
            }

            // Push into child boxes: homogenize to the columns visible
            // below each quantifier arc, then cover with the child's own
            // output requirement.
            let quantifiers = graph.boxed(box_id).quantifiers.clone();
            let pushing = graph.boxed(box_id).interesting.clone();
            for q in quantifiers {
                let QuantifierInput::Box(child) = q.input else {
                    continue;
                };
                let targets: ColSet = q.cols.iter().copied().collect();
                for order in &pushing {
                    let (homog, _complete) = self.ctx.homogenize_prefix(order, &targets);
                    if homog.is_empty() {
                        continue;
                    }
                    let child_box = graph.boxed_mut(child);
                    if let Some(child_req) = child_box.output_order.clone() {
                        if let Some(covered) = self.ctx.cover(&homog, &child_req) {
                            child_box.add_interesting(covered);
                        }
                        // No cover: the child's own requirement stands;
                        // the pushed order dies here.
                    } else {
                        child_box.add_interesting(homog);
                    }
                }
            }
        }
    }
}

/// Repeatedly covers pairs in the list until no two entries can be
/// combined, so one sort can satisfy several interesting orders (§4.3).
fn merge_covers(ctx: &OrderContext, mut orders: Vec<OrderSpec>) -> Vec<OrderSpec> {
    let mut changed = true;
    while changed {
        changed = false;
        'outer: for i in 0..orders.len() {
            for j in (i + 1)..orders.len() {
                if let Some(c) = ctx.cover(&orders[i], &orders[j]) {
                    orders.remove(j);
                    orders[i] = c;
                    changed = true;
                    break 'outer;
                }
            }
        }
    }
    orders
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{BoxKind, OutputCol, QueryGraph};
    use fto_catalog::{Catalog, ColumnDef, KeyDef};
    use fto_common::{ColId, DataType, Value};
    use fto_expr::{AggCall, AggFunc, Expr, Predicate};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for name in ["a", "b", "c"] {
            cat.create_table(
                name,
                vec![
                    ColumnDef::new("x", DataType::Int),
                    ColumnDef::new("y", DataType::Int),
                ],
                vec![KeyDef::primary([0])],
            )
            .unwrap();
        }
        cat
    }

    /// select * from a, b where a.x = b.x order by a.x, b.y
    /// (the paper's §4.4 example query).
    fn join_query(cat: &Catalog) -> (QueryGraph, Vec<ColId>, Vec<ColId>) {
        let mut g = QueryGraph::new();
        let sel = g.add_box(BoxKind::Select);
        g.add_table_quantifier(sel, cat.table_by_name("a").unwrap());
        g.add_table_quantifier(sel, cat.table_by_name("b").unwrap());
        let a_cols = g.boxed(sel).quantifiers[0].cols.clone();
        let b_cols = g.boxed(sel).quantifiers[1].cols.clone();
        let p = g.add_predicate(Predicate::col_eq_col(a_cols[0], b_cols[0]));
        g.boxed_mut(sel).predicates.push(p);
        g.boxed_mut(sel).output = a_cols
            .iter()
            .chain(&b_cols)
            .map(|&c| OutputCol::passthrough(c))
            .collect();
        g.boxed_mut(sel).output_order = Some(OrderSpec::ascending([a_cols[0], b_cols[1]]));
        g.root = sel;
        (g, a_cols, b_cols)
    }

    #[test]
    fn global_context_collects_keys_and_equivalences() {
        let cat = catalog();
        let (g, a_cols, b_cols) = join_query(&cat);
        let ctx = global_context(&g, &cat);
        assert!(ctx.equivalences().same_class(a_cols[0], b_cols[0]));
        // a.x is a's key: {a.x} -> {a.y}.
        assert!(ctx
            .fds()
            .determines(&ColSet::singleton(a_cols[0]), a_cols[1]));
    }

    #[test]
    fn merge_join_orders_recorded() {
        let cat = catalog();
        let (mut g, a_cols, b_cols) = join_query(&cat);
        let ctx = OrderScan::run(&mut g, &cat);
        let interesting = &g.boxed(g.root).interesting;
        // The ORDER BY (a.x, b.y) and the merge-join orders (a.x), (b.x)
        // all reduce/cover: (a.x, b.y) covers (a.x) and — via the class
        // {a.x, b.x} — covers (b.x) too.
        assert!(!interesting.is_empty());
        let order_by = OrderSpec::ascending([a_cols[0], b_cols[1]]);
        assert!(
            interesting.iter().any(|i| ctx.test_order(&order_by, i)),
            "{interesting:?}"
        );
        // After cover-merging, a single order suffices here.
        assert_eq!(interesting.len(), 1, "{interesting:?}");
    }

    #[test]
    fn group_by_requirement_uses_degrees_of_freedom() {
        let cat = catalog();
        let mut g = QueryGraph::new();
        let sel = g.add_box(BoxKind::Select);
        g.add_table_quantifier(sel, cat.table_by_name("a").unwrap());
        let cols = g.boxed(sel).quantifiers[0].cols.clone();
        g.boxed_mut(sel).output = cols.iter().map(|&c| OutputCol::passthrough(c)).collect();

        let gb = g.add_box(BoxKind::GroupBy {
            grouping: vec![cols[1]],
        });
        g.add_box_quantifier(gb, sel);
        let agg_col = g.fresh_derived(gb, "s", DataType::Int);
        g.boxed_mut(gb).output = vec![
            OutputCol::passthrough(cols[1]),
            OutputCol {
                col: agg_col,
                expr: OutputExpr::Agg(AggCall::new(AggFunc::Sum, Expr::col(cols[0]))),
            },
        ];
        g.root = gb;
        let ctx = OrderScan::run(&mut g, &cat);
        let flex = g.boxed(gb).group_order.clone().unwrap();
        assert!(flex.satisfied_by(&OrderSpec::ascending([cols[1]]), &ctx));
        // The requirement was pushed into the select box as an
        // interesting order.
        assert!(g
            .boxed(sel)
            .interesting
            .contains(&OrderSpec::ascending([cols[1]])));
    }

    /// ORDER BY over GROUP BY on the same leading column: one sort
    /// below the group-by serves both (cover through the generalized
    /// order).
    #[test]
    fn order_by_covers_group_by_requirement() {
        let cat = catalog();
        let mut g = QueryGraph::new();
        let sel = g.add_box(BoxKind::Select);
        g.add_table_quantifier(sel, cat.table_by_name("a").unwrap());
        let cols = g.boxed(sel).quantifiers[0].cols.clone();
        g.boxed_mut(sel).output = cols.iter().map(|&c| OutputCol::passthrough(c)).collect();

        let gb = g.add_box(BoxKind::GroupBy {
            grouping: vec![cols[0], cols[1]],
        });
        g.add_box_quantifier(gb, sel);
        g.boxed_mut(gb).output = vec![
            OutputCol::passthrough(cols[0]),
            OutputCol::passthrough(cols[1]),
        ];
        // ORDER BY y (the second grouping column).
        g.boxed_mut(gb).output_order = Some(OrderSpec::ascending([cols[1]]));
        g.root = gb;

        let ctx = OrderScan::run(&mut g, &cat);
        // The select box receives a sort-ahead order starting with y that
        // also satisfies the grouping requirement.
        let pushed = &g.boxed(sel).interesting;
        assert!(!pushed.is_empty());
        let flex = g.boxed(gb).group_order.clone().unwrap();
        assert!(
            pushed.iter().any(|o| {
                o.keys().first().map(|k| k.col) == Some(cols[1]) && flex.satisfied_by(o, &ctx)
            }),
            "{pushed:?}"
        );
    }

    #[test]
    fn constants_shorten_pushed_orders() {
        let cat = catalog();
        let (mut g, a_cols, b_cols) = join_query(&cat);
        // ORDER BY a.y, b.y with a.y = 10 applied: reduces to (b.y), which
        // then covers with the merge-join order on b.x? No — (b.y) and
        // (b.x) have no cover, so both remain interesting.
        let root = g.root;
        g.boxed_mut(root).output_order = Some(OrderSpec::ascending([a_cols[1], b_cols[1]]));
        let p = g.add_predicate(Predicate::col_eq_const(a_cols[1], Value::Int(10)));
        g.boxed_mut(root).predicates.push(p);
        let _ctx = OrderScan::run(&mut g, &cat);
        let interesting = &g.boxed(root).interesting;
        assert!(
            interesting.contains(&OrderSpec::ascending([b_cols[1]])),
            "{interesting:?}"
        );
    }

    /// When a constant on the join column combines with the inner table's
    /// key, the whole ORDER BY becomes redundant: one customer row means
    /// every order column is constant. The scan correctly records *no*
    /// interesting orders.
    #[test]
    fn constant_on_key_join_column_eliminates_order() {
        let cat = catalog();
        let (mut g, a_cols, _b_cols) = join_query(&cat);
        // a.x = 10 with a.x = b.x and b.x the key of b: at most one b row,
        // so b.y is constant and (a.x, b.y) reduces to ().
        let root = g.root;
        let p = g.add_predicate(Predicate::col_eq_const(a_cols[0], Value::Int(10)));
        g.boxed_mut(root).predicates.push(p);
        OrderScan::run(&mut g, &cat);
        assert!(g.boxed(root).interesting.is_empty());
    }

    #[test]
    fn distinct_box_gets_flex_requirement() {
        let cat = catalog();
        let mut g = QueryGraph::new();
        let sel = g.add_box(BoxKind::Select);
        g.add_table_quantifier(sel, cat.table_by_name("a").unwrap());
        let cols = g.boxed(sel).quantifiers[0].cols.clone();
        g.boxed_mut(sel).output = cols.iter().map(|&c| OutputCol::passthrough(c)).collect();
        g.boxed_mut(sel).distinct = true;
        g.root = sel;
        let ctx = OrderScan::run(&mut g, &cat);
        let flex = g.boxed(sel).group_order.clone().unwrap();
        // Any permutation of the two output columns qualifies.
        assert!(flex.satisfied_by(&OrderSpec::ascending([cols[0], cols[1]]), &ctx));
        assert!(flex.satisfied_by(&OrderSpec::ascending([cols[1], cols[0]]), &ctx));
    }

    #[test]
    fn push_through_view_homogenizes() {
        // Inner box (view) over table a; outer ORDER BY on the view's
        // passthrough column must reach the inner box.
        let cat = catalog();
        let mut g = QueryGraph::new();
        let inner = g.add_box(BoxKind::Select);
        g.add_table_quantifier(inner, cat.table_by_name("a").unwrap());
        let cols = g.boxed(inner).quantifiers[0].cols.clone();
        g.boxed_mut(inner).output = cols.iter().map(|&c| OutputCol::passthrough(c)).collect();

        let outer = g.add_box(BoxKind::Select);
        g.add_box_quantifier(outer, inner);
        g.boxed_mut(outer).output = cols.iter().map(|&c| OutputCol::passthrough(c)).collect();
        g.boxed_mut(outer).output_order = Some(OrderSpec::ascending([cols[1]]));
        g.root = outer;

        OrderScan::run(&mut g, &cat);
        assert!(g
            .boxed(inner)
            .interesting
            .contains(&OrderSpec::ascending([cols[1]])));
    }

    /// Outer-join ON predicates feed one-directional FDs only: the
    /// global context must not merge their columns into one class.
    #[test]
    fn outer_join_on_predicates_stay_one_directional() {
        let cat = catalog();
        let mut g = QueryGraph::new();
        let oj = g.add_box(BoxKind::OuterJoin { on: vec![] });
        g.add_table_quantifier(oj, cat.table_by_name("a").unwrap());
        g.add_table_quantifier(oj, cat.table_by_name("b").unwrap());
        let a_cols = g.boxed(oj).quantifiers[0].cols.clone();
        let b_cols = g.boxed(oj).quantifiers[1].cols.clone();
        let pid = g.add_predicate(Predicate::col_eq_col(a_cols[0], b_cols[0]));
        g.boxed_mut(oj).kind = BoxKind::OuterJoin { on: vec![pid] };
        g.boxed_mut(oj).output = a_cols
            .iter()
            .chain(&b_cols)
            .map(|&c| OutputCol::passthrough(c))
            .collect();
        g.root = oj;
        let ctx = global_context(&g, &cat);
        // No equivalence class across the outer join...
        assert!(!ctx.equivalences().same_class(a_cols[0], b_cols[0]));
        // ...but the preserved-side FD holds: {a.x} -> {b.x}.
        assert!(ctx
            .fds()
            .determines(&ColSet::singleton(a_cols[0]), b_cols[0]));
        // And not the reverse.
        assert!(!ctx
            .fds()
            .determines(&ColSet::singleton(b_cols[0]), a_cols[0]));
    }

    #[test]
    fn merge_covers_combines_prefixes() {
        let ctx = OrderContext::trivial();
        let orders = vec![
            OrderSpec::ascending([ColId(0)]),
            OrderSpec::ascending([ColId(0), ColId(1)]),
            OrderSpec::ascending([ColId(5)]),
        ];
        let merged = merge_covers(&ctx, orders);
        assert_eq!(merged.len(), 2);
        assert!(merged.contains(&OrderSpec::ascending([ColId(0), ColId(1)])));
        assert!(merged.contains(&OrderSpec::ascending([ColId(5)])));
    }
}
