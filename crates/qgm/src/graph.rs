//! The query graph: boxes, quantifiers, and the query-scoped column
//! registry.
//!
//! Column identity convention: every base-table quantifier mints fresh
//! [`ColId`]s for its columns (two references to one table stay distinct,
//! as QGM requires for self-joins). Boxes *reuse* the ids of columns they
//! pass through unchanged and mint fresh ids only for computed outputs
//! (scalar expressions, aggregates). This gives the whole query one flat
//! column space, which is what lets interesting orders move across box
//! boundaries without translation tables.

use fto_common::{ColId, ColSet, DataType, FtoError, QuantifierId, Result, TableId};
use fto_expr::{AggCall, Expr, PredId, Predicate};
use fto_order::{FlexOrder, OrderSpec};
use std::fmt;

/// Identifies a box within one query graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BoxId(pub u32);

impl BoxId {
    /// The id as a usize, for indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BoxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Where a query column comes from.
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnOrigin {
    /// A base-table column: (quantifier, table, column ordinal).
    Base(QuantifierId, TableId, usize),
    /// A computed output of a box (scalar expression or aggregate).
    Derived(BoxId),
}

/// Registered metadata for one query column.
#[derive(Clone, Debug)]
pub struct ColumnInfo {
    /// Display name (e.g. `o_orderkey` or `rev`).
    pub name: String,
    /// Column type.
    pub data_type: DataType,
    /// Provenance.
    pub origin: ColumnOrigin,
}

/// Mints and resolves query-scoped column ids.
#[derive(Default, Debug)]
pub struct ColumnRegistry {
    cols: Vec<ColumnInfo>,
}

impl ColumnRegistry {
    /// Creates an empty registry.
    pub fn new() -> ColumnRegistry {
        ColumnRegistry::default()
    }

    /// Mints a fresh column id.
    pub fn fresh(
        &mut self,
        name: impl Into<String>,
        data_type: DataType,
        origin: ColumnOrigin,
    ) -> ColId {
        let id = ColId::from(self.cols.len());
        self.cols.push(ColumnInfo {
            name: name.into(),
            data_type,
            origin,
        });
        id
    }

    /// Metadata for a column.
    pub fn info(&self, col: ColId) -> &ColumnInfo {
        &self.cols[col.index()]
    }

    /// Display name for a column.
    pub fn name(&self, col: ColId) -> &str {
        &self.cols[col.index()].name
    }

    /// Number of registered columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when no columns are registered.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }
}

/// What a quantifier ranges over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuantifierInput {
    /// A base table.
    Table(TableId),
    /// Another box (a view, derived table, or group-by input).
    Box(BoxId),
}

/// A table reference within a box.
#[derive(Clone, Debug)]
pub struct Quantifier {
    /// The quantifier's id.
    pub id: QuantifierId,
    /// What it ranges over.
    pub input: QuantifierInput,
    /// The columns it makes visible to its box, in declaration order.
    pub cols: Vec<ColId>,
}

impl Quantifier {
    /// The visible columns as a set.
    pub fn col_set(&self) -> ColSet {
        self.cols.iter().copied().collect()
    }
}

/// One output column of a box.
#[derive(Clone, Debug)]
pub struct OutputCol {
    /// The column id the output is known by upstream. Pass-through
    /// columns reuse their input id; computed outputs use fresh ids.
    pub col: ColId,
    /// How the value is produced.
    pub expr: OutputExpr,
}

/// The defining expression of an output column.
#[derive(Clone, Debug)]
pub enum OutputExpr {
    /// A scalar expression over the box's visible columns. A bare
    /// `Expr::Col` is a pass-through.
    Scalar(Expr),
    /// An aggregate call (GROUP BY boxes only).
    Agg(AggCall),
}

impl OutputCol {
    /// A pass-through output.
    pub fn passthrough(col: ColId) -> OutputCol {
        OutputCol {
            col,
            expr: OutputExpr::Scalar(Expr::col(col)),
        }
    }

    /// True when the output just forwards its own column id.
    pub fn is_passthrough(&self) -> bool {
        matches!(&self.expr, OutputExpr::Scalar(Expr::Col(c)) if *c == self.col)
    }
}

/// The operation a box performs.
#[derive(Clone, Debug, PartialEq)]
pub enum BoxKind {
    /// Selection/projection/join: quantifiers are joined, predicates
    /// applied, outputs projected.
    Select,
    /// Grouping and aggregation. The grouping columns are listed here;
    /// aggregate outputs appear in `output` as [`OutputExpr::Agg`].
    GroupBy {
        /// Grouping columns (ids visible from the single input
        /// quantifier).
        grouping: Vec<ColId>,
    },
    /// Bag union of the input quantifiers (UNION ALL; wrap in DISTINCT
    /// for set union).
    Union,
    /// Left outer join of exactly two quantifiers: the first is the
    /// preserved (non-null-supplying) side, the second is null-supplying.
    /// The ON predicates live in `on`. Per the paper's §4.1, an ON
    /// equality `x = y` contributes only the one-directional FD
    /// `{x} → {y}` when `x` comes from the preserved side — never an
    /// equivalence class.
    OuterJoin {
        /// ON-clause predicate ids.
        on: Vec<PredId>,
    },
}

/// One box of the query graph.
#[derive(Clone, Debug)]
pub struct QgmBox {
    /// The box's id.
    pub id: BoxId,
    /// The operation.
    pub kind: BoxKind,
    /// Input quantifiers.
    pub quantifiers: Vec<Quantifier>,
    /// Predicates this box applies (ids into [`QueryGraph::predicates`]).
    pub predicates: Vec<PredId>,
    /// Output columns, in order.
    pub output: Vec<OutputCol>,
    /// SQL DISTINCT on the box's output.
    pub distinct: bool,
    /// The output order *requirement* (from ORDER BY; root box only).
    pub output_order: Option<OrderSpec>,
    /// Interesting orders hung off the box by the order scan, doubling as
    /// sort-ahead candidates for the planner (paper §5.1).
    pub interesting: Vec<OrderSpec>,
    /// The generalized input order requirement of a GROUP BY or DISTINCT
    /// box, recorded by the order scan (paper §7 representation).
    pub group_order: Option<FlexOrder>,
    /// Row budget (SQL LIMIT) on the box's output.
    pub limit: Option<u64>,
}

impl QgmBox {
    /// The output column ids, in order.
    pub fn output_cols(&self) -> Vec<ColId> {
        self.output.iter().map(|o| o.col).collect()
    }

    /// The output column ids as a set.
    pub fn output_col_set(&self) -> ColSet {
        self.output.iter().map(|o| o.col).collect()
    }

    /// All columns visible inside the box (union of quantifier columns).
    pub fn visible_cols(&self) -> ColSet {
        let mut s = ColSet::new();
        for q in &self.quantifiers {
            for &c in &q.cols {
                s.insert(c);
            }
        }
        s
    }

    /// Adds an interesting order if no recorded order already covers it
    /// (exact-duplicate suppression; semantic covering happens in the
    /// order scan where a context is available).
    pub fn add_interesting(&mut self, order: OrderSpec) {
        if order.is_empty() {
            return;
        }
        if !self.interesting.contains(&order) {
            self.interesting.push(order);
        }
    }
}

/// A whole query: boxes, predicates, and the column registry.
#[derive(Debug)]
pub struct QueryGraph {
    /// The boxes; index = BoxId.
    pub boxes: Vec<QgmBox>,
    /// The root (output) box.
    pub root: BoxId,
    /// All predicates of the query; index = PredId.
    pub predicates: Vec<Predicate>,
    /// The column registry.
    pub registry: ColumnRegistry,
    next_quantifier: u32,
}

impl QueryGraph {
    /// Creates an empty graph (root is fixed up by the builder).
    pub fn new() -> QueryGraph {
        QueryGraph {
            boxes: Vec::new(),
            root: BoxId(0),
            predicates: Vec::new(),
            registry: ColumnRegistry::new(),
            next_quantifier: 0,
        }
    }

    /// Adds an empty box of the given kind and returns its id.
    pub fn add_box(&mut self, kind: BoxKind) -> BoxId {
        let id = BoxId(self.boxes.len() as u32);
        self.boxes.push(QgmBox {
            id,
            kind,
            quantifiers: Vec::new(),
            predicates: Vec::new(),
            output: Vec::new(),
            distinct: false,
            output_order: None,
            interesting: Vec::new(),
            group_order: None,
            limit: None,
        });
        id
    }

    /// Registers a predicate and returns its id.
    pub fn add_predicate(&mut self, pred: Predicate) -> PredId {
        let id = PredId(self.predicates.len() as u32);
        self.predicates.push(pred);
        id
    }

    /// The predicate for an id.
    pub fn predicate(&self, id: PredId) -> &Predicate {
        &self.predicates[id.index()]
    }

    /// Shared access to a box.
    pub fn boxed(&self, id: BoxId) -> &QgmBox {
        &self.boxes[id.index()]
    }

    /// Mutable access to a box.
    pub fn boxed_mut(&mut self, id: BoxId) -> &mut QgmBox {
        &mut self.boxes[id.index()]
    }

    /// Adds to `box_id` a quantifier ranging over base table `table`,
    /// minting fresh column ids for every table column.
    pub fn add_table_quantifier(
        &mut self,
        box_id: BoxId,
        table: &fto_catalog::TableDef,
    ) -> QuantifierId {
        let qid = QuantifierId(self.next_quantifier);
        self.next_quantifier += 1;
        let cols: Vec<ColId> = table
            .columns
            .iter()
            .enumerate()
            .map(|(ord, c)| {
                self.registry.fresh(
                    c.name.clone(),
                    c.data_type,
                    ColumnOrigin::Base(qid, table.id, ord),
                )
            })
            .collect();
        self.boxes[box_id.index()].quantifiers.push(Quantifier {
            id: qid,
            input: QuantifierInput::Table(table.id),
            cols,
        });
        qid
    }

    /// Adds to `box_id` a quantifier ranging over another box; the inner
    /// box's output ids become the visible columns (no fresh ids — one
    /// flat column space).
    pub fn add_box_quantifier(&mut self, box_id: BoxId, inner: BoxId) -> QuantifierId {
        let qid = QuantifierId(self.next_quantifier);
        self.next_quantifier += 1;
        let cols = self.boxes[inner.index()].output_cols();
        self.boxes[box_id.index()].quantifiers.push(Quantifier {
            id: qid,
            input: QuantifierInput::Box(inner),
            cols,
        });
        qid
    }

    /// Mints a fresh derived column (computed scalar or aggregate output)
    /// belonging to `box_id`.
    pub fn fresh_derived(
        &mut self,
        box_id: BoxId,
        name: impl Into<String>,
        data_type: DataType,
    ) -> ColId {
        self.registry
            .fresh(name, data_type, ColumnOrigin::Derived(box_id))
    }

    /// Resolves a column name among the visible columns of a box
    /// (optionally qualified with a quantifier's table name resolved by
    /// the SQL layer — here the lookup is by plain column name).
    pub fn resolve_in_box(&self, box_id: BoxId, name: &str) -> Result<ColId> {
        let lname = name.to_ascii_lowercase();
        let mut found = None;
        for q in &self.boxes[box_id.index()].quantifiers {
            for &c in &q.cols {
                if self.registry.name(c) == lname {
                    if found.is_some() {
                        return Err(FtoError::Resolution(format!("ambiguous column '{name}'")));
                    }
                    found = Some(c);
                }
            }
        }
        found.ok_or_else(|| FtoError::Resolution(format!("unknown column '{name}'")))
    }

    /// The boxes in bottom-up (children before parents) order, derived
    /// from quantifier arcs starting at the root.
    pub fn bottom_up(&self) -> Vec<BoxId> {
        let mut order = Vec::new();
        let mut visited = vec![false; self.boxes.len()];
        fn dfs(g: &QueryGraph, b: BoxId, visited: &mut [bool], out: &mut Vec<BoxId>) {
            if visited[b.index()] {
                return;
            }
            visited[b.index()] = true;
            for q in &g.boxes[b.index()].quantifiers {
                if let QuantifierInput::Box(inner) = q.input {
                    dfs(g, inner, visited, out);
                }
            }
            out.push(b);
        }
        dfs(self, self.root, &mut visited, &mut order);
        order
    }
}

impl Default for QueryGraph {
    fn default() -> Self {
        QueryGraph::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fto_catalog::{Catalog, ColumnDef, KeyDef};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "a",
            vec![
                ColumnDef::new("x", DataType::Int),
                ColumnDef::new("y", DataType::Int),
            ],
            vec![KeyDef::primary([0])],
        )
        .unwrap();
        cat.create_table(
            "b",
            vec![
                ColumnDef::new("x", DataType::Int),
                ColumnDef::new("z", DataType::Int),
            ],
            vec![],
        )
        .unwrap();
        cat
    }

    #[test]
    fn table_quantifiers_mint_fresh_columns() {
        let cat = catalog();
        let mut g = QueryGraph::new();
        let b = g.add_box(BoxKind::Select);
        let q1 = g.add_table_quantifier(b, cat.table_by_name("a").unwrap());
        let q2 = g.add_table_quantifier(b, cat.table_by_name("a").unwrap());
        assert_ne!(q1, q2);
        let qs = &g.boxed(b).quantifiers;
        assert_ne!(qs[0].cols, qs[1].cols); // self-join stays distinct
        assert_eq!(g.registry.len(), 4);
        assert_eq!(g.registry.name(qs[0].cols[1]), "y");
    }

    #[test]
    fn box_quantifiers_reuse_output_ids() {
        let cat = catalog();
        let mut g = QueryGraph::new();
        let inner = g.add_box(BoxKind::Select);
        g.add_table_quantifier(inner, cat.table_by_name("a").unwrap());
        let cols = g.boxed(inner).quantifiers[0].cols.clone();
        g.boxed_mut(inner).output = cols.iter().map(|&c| OutputCol::passthrough(c)).collect();

        let outer = g.add_box(BoxKind::Select);
        g.add_box_quantifier(outer, inner);
        assert_eq!(g.boxed(outer).quantifiers[0].cols, cols);
    }

    #[test]
    fn resolve_in_box() {
        let cat = catalog();
        let mut g = QueryGraph::new();
        let b = g.add_box(BoxKind::Select);
        g.add_table_quantifier(b, cat.table_by_name("a").unwrap());
        g.add_table_quantifier(b, cat.table_by_name("b").unwrap());
        // 'y' and 'z' are unambiguous; 'x' appears in both tables.
        assert!(g.resolve_in_box(b, "y").is_ok());
        assert!(g.resolve_in_box(b, "Z").is_ok());
        let err = g.resolve_in_box(b, "x").unwrap_err();
        assert!(matches!(err, FtoError::Resolution(m) if m.contains("ambiguous")));
        assert!(g.resolve_in_box(b, "nope").is_err());
    }

    #[test]
    fn bottom_up_orders_children_first() {
        let cat = catalog();
        let mut g = QueryGraph::new();
        let inner = g.add_box(BoxKind::Select);
        g.add_table_quantifier(inner, cat.table_by_name("a").unwrap());
        let outer = g.add_box(BoxKind::Select);
        g.add_box_quantifier(outer, inner);
        g.root = outer;
        assert_eq!(g.bottom_up(), vec![inner, outer]);
    }

    #[test]
    fn passthrough_detection() {
        let out = OutputCol::passthrough(ColId(3));
        assert!(out.is_passthrough());
        let computed = OutputCol {
            col: ColId(4),
            expr: OutputExpr::Scalar(Expr::col(ColId(3))),
        };
        assert!(!computed.is_passthrough());
    }

    #[test]
    fn add_interesting_dedupes() {
        let mut g = QueryGraph::new();
        let b = g.add_box(BoxKind::Select);
        let o = OrderSpec::ascending([ColId(1)]);
        g.boxed_mut(b).add_interesting(o.clone());
        g.boxed_mut(b).add_interesting(o.clone());
        g.boxed_mut(b).add_interesting(OrderSpec::empty());
        assert_eq!(g.boxed(b).interesting.len(), 1);
    }

    #[test]
    fn predicate_registry() {
        let mut g = QueryGraph::new();
        let p = g.add_predicate(Predicate::col_eq_col(ColId(0), ColId(1)));
        assert_eq!(p, PredId(0));
        assert!(g.predicate(p).is_col_eq_col());
    }
}
