//! QGM-to-QGM rewrites applied before cost-based planning (paper §3:
//! "the original QGM is transformed into a semantically equivalent but
//! more efficient QGM using heuristics such as predicate push-down
//! \[and\] view merging").

use crate::graph::{BoxKind, QuantifierInput, QueryGraph};
use fto_common::ColSet;
use fto_expr::PredId;

/// Pushes predicates from a box into the child boxes that can evaluate
/// them: a predicate moves down a quantifier arc when every column it
/// references is visible below that arc. Predicates never move into a
/// GROUP BY box unless they touch only grouping columns (filtering groups
/// early is then equivalent to filtering rows late).
///
/// Returns the number of predicates moved.
pub fn push_down_predicates(graph: &mut QueryGraph) -> usize {
    let mut moved = 0;
    // Iterate to a fixpoint so predicates can sink through several levels.
    loop {
        let mut any = false;
        for bi in 0..graph.boxes.len() {
            let pred_ids: Vec<PredId> = graph.boxes[bi].predicates.clone();
            for pid in pred_ids {
                let cols = graph.predicate(pid).cols();
                let Some(child) = pushable_target(graph, bi, &cols) else {
                    continue;
                };
                let parent = &mut graph.boxes[bi];
                parent.predicates.retain(|&p| p != pid);
                graph.boxes[child].predicates.push(pid);
                moved += 1;
                any = true;
            }
        }
        if !any {
            return moved;
        }
    }
}

/// Finds the single child box of `parent` that can absorb a predicate over
/// `cols`, if any.
fn pushable_target(graph: &QueryGraph, parent: usize, cols: &ColSet) -> Option<usize> {
    if cols.is_empty() {
        return None;
    }
    for q in &graph.boxes[parent].quantifiers {
        let QuantifierInput::Box(child) = q.input else {
            continue;
        };
        let visible: ColSet = q.cols.iter().copied().collect();
        if !cols.is_subset(&visible) {
            continue;
        }
        let child_box = &graph.boxes[child.index()];
        match &child_box.kind {
            BoxKind::Select if !child_box.distinct && child_box.output_order.is_none() => {
                return Some(child.index());
            }
            BoxKind::GroupBy { grouping } => {
                let g: ColSet = grouping.iter().copied().collect();
                if cols.is_subset(&g) {
                    return Some(child.index());
                }
            }
            _ => {}
        }
    }
    None
}

/// Merges trivial view boxes into their consumers: a child SELECT box
/// whose outputs are all pass-through, with no DISTINCT and no ORDER BY,
/// dissolves into the parent SELECT box — its quantifiers and predicates
/// move up. Because boxes reuse pass-through column ids, no column
/// translation is needed.
///
/// Returns the number of boxes merged.
pub fn merge_views(graph: &mut QueryGraph) -> usize {
    let mut merged = 0;
    loop {
        let Some((parent, qidx, child)) = find_mergeable(graph) else {
            return merged;
        };
        let child_box = graph.boxes[child].clone();
        let parent_box = &mut graph.boxes[parent];
        parent_box.quantifiers.remove(qidx);
        parent_box
            .quantifiers
            .extend(child_box.quantifiers.iter().cloned());
        parent_box.predicates.extend(child_box.predicates.iter());
        merged += 1;
    }
}

fn find_mergeable(graph: &QueryGraph) -> Option<(usize, usize, usize)> {
    for (bi, qbox) in graph.boxes.iter().enumerate() {
        if qbox.kind != BoxKind::Select {
            continue;
        }
        for (qi, q) in qbox.quantifiers.iter().enumerate() {
            let QuantifierInput::Box(child) = q.input else {
                continue;
            };
            let child_box = &graph.boxes[child.index()];
            let mergeable = child_box.kind == BoxKind::Select
                && !child_box.distinct
                && child_box.output_order.is_none()
                && child_box.output.iter().all(|o| o.is_passthrough());
            if mergeable {
                return Some((bi, qi, child.index()));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{OutputCol, QueryGraph};
    use fto_catalog::{Catalog, ColumnDef, KeyDef};
    use fto_common::{DataType, Value};
    use fto_expr::Predicate;
    use fto_order::OrderSpec;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for name in ["a", "b"] {
            cat.create_table(
                name,
                vec![
                    ColumnDef::new("x", DataType::Int),
                    ColumnDef::new("y", DataType::Int),
                ],
                vec![KeyDef::primary([0])],
            )
            .unwrap();
        }
        cat
    }

    /// outer select (pred on view column) over inner select over table a.
    fn view_query(
        cat: &Catalog,
        passthrough: bool,
    ) -> (QueryGraph, usize, usize, Vec<fto_common::ColId>) {
        let mut g = QueryGraph::new();
        let inner = g.add_box(BoxKind::Select);
        g.add_table_quantifier(inner, cat.table_by_name("a").unwrap());
        let cols = g.boxed(inner).quantifiers[0].cols.clone();
        if passthrough {
            g.boxed_mut(inner).output = cols.iter().map(|&c| OutputCol::passthrough(c)).collect();
        } else {
            // A computed output blocks merging.
            let d = g.fresh_derived(inner, "d", DataType::Int);
            g.boxed_mut(inner).output = vec![OutputCol {
                col: d,
                expr: crate::graph::OutputExpr::Scalar(fto_expr::Expr::col(cols[0])),
            }];
        }
        let outer = g.add_box(BoxKind::Select);
        g.add_box_quantifier(outer, inner);
        let visible = g.boxed(outer).quantifiers[0].cols.clone();
        let p = g.add_predicate(Predicate::col_eq_const(visible[0], Value::Int(1)));
        g.boxed_mut(outer).predicates.push(p);
        g.boxed_mut(outer).output = visible.iter().map(|&c| OutputCol::passthrough(c)).collect();
        g.root = outer;
        (g, inner.index(), outer.index(), cols)
    }

    #[test]
    fn predicate_pushes_into_view() {
        let cat = catalog();
        let (mut g, inner, outer, _) = view_query(&cat, true);
        let moved = push_down_predicates(&mut g);
        assert_eq!(moved, 1);
        assert!(g.boxes[outer].predicates.is_empty());
        assert_eq!(g.boxes[inner].predicates.len(), 1);
    }

    #[test]
    fn predicate_stays_when_child_has_order_requirement() {
        let cat = catalog();
        let (mut g, inner, outer, cols) = view_query(&cat, true);
        g.boxes[inner].output_order = Some(OrderSpec::ascending([cols[0]]));
        let moved = push_down_predicates(&mut g);
        assert_eq!(moved, 0);
        assert_eq!(g.boxes[outer].predicates.len(), 1);
    }

    #[test]
    fn predicate_pushes_into_group_by_on_grouping_cols_only() {
        let cat = catalog();
        let mut g = QueryGraph::new();
        let sel = g.add_box(BoxKind::Select);
        g.add_table_quantifier(sel, cat.table_by_name("a").unwrap());
        let cols = g.boxed(sel).quantifiers[0].cols.clone();
        g.boxed_mut(sel).output = cols.iter().map(|&c| OutputCol::passthrough(c)).collect();
        let gb = g.add_box(BoxKind::GroupBy {
            grouping: vec![cols[0]],
        });
        g.add_box_quantifier(gb, sel);
        g.boxed_mut(gb).output = vec![OutputCol::passthrough(cols[0])];
        let outer = g.add_box(BoxKind::Select);
        g.add_box_quantifier(outer, gb);
        g.boxed_mut(outer).output = vec![OutputCol::passthrough(cols[0])];
        let p = g.add_predicate(Predicate::col_eq_const(cols[0], Value::Int(1)));
        g.boxed_mut(outer).predicates.push(p);
        g.root = outer;

        let moved = push_down_predicates(&mut g);
        // Sinks through the group-by into the select: two hops.
        assert_eq!(moved, 2);
        assert_eq!(g.boxes[sel.index()].predicates.len(), 1);
    }

    #[test]
    fn merge_passthrough_view() {
        let cat = catalog();
        let (mut g, _inner, outer, _) = view_query(&cat, true);
        let merged = merge_views(&mut g);
        assert_eq!(merged, 1);
        let root = &g.boxes[outer];
        // The outer box now ranges directly over the base table.
        assert_eq!(root.quantifiers.len(), 1);
        assert!(matches!(
            root.quantifiers[0].input,
            QuantifierInput::Table(_)
        ));
    }

    #[test]
    fn computed_view_not_merged() {
        let cat = catalog();
        let (mut g, _, _, _) = view_query(&cat, false);
        assert_eq!(merge_views(&mut g), 0);
    }

    #[test]
    fn merge_hoists_view_predicates() {
        let cat = catalog();
        let (mut g, inner, outer, cols) = view_query(&cat, true);
        let p2 = g.add_predicate(Predicate::col_eq_const(cols[1], Value::Int(2)));
        g.boxes[inner].predicates.push(p2);
        merge_views(&mut g);
        assert_eq!(g.boxes[outer].predicates.len(), 2);
    }
}
