//! The Query Graph Model (QGM) and the top-down *order scan*.
//!
//! The paper (§3) describes DB2's intermediate query representation:
//! *boxes* for relational operations (SELECT, GROUP BY, ...) connected by
//! *quantifiers* (table references). This crate implements
//!
//! * the graph itself ([`QueryGraph`], [`QgmBox`], [`Quantifier`]) with a
//!   global, query-scoped column registry;
//! * rewrites applied before planning: predicate pushdown and view merging
//!   ([`rewrite`]);
//! * the **order scan** (§5.1): the four-stage top-down pass that derives
//!   interesting orders from ORDER BY, GROUP BY, DISTINCT, and joins,
//!   pushes them down through quantifier arcs (homogenizing and covering
//!   on the way), and hangs them off each box as sort-ahead candidates for
//!   the planner.

#![deny(missing_docs)]

pub mod graph;
pub mod orderscan;
pub mod rewrite;

pub use graph::{
    BoxId, BoxKind, ColumnInfo, ColumnRegistry, OutputCol, QgmBox, Quantifier, QuantifierInput,
    QueryGraph,
};
pub use orderscan::{global_context, OrderScan};
