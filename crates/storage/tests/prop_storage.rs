//! Randomized tests for the storage layer: ordered indexes must agree
//! with a naive model on scans, probes, and ranges, across many
//! deterministic random cases.

use fto_common::{Direction, Rng, TableId, Value};
use fto_storage::{HeapTable, OrderedIndex};

const CASES: u64 = 200;

fn heap_from(values: &[(i64, i64)]) -> HeapTable {
    let mut h = HeapTable::new(TableId(0), 16);
    for &(a, b) in values {
        h.append(vec![Value::Int(a), Value::Int(b)].into_boxed_slice());
    }
    h
}

fn random_pairs(rng: &mut Rng, max_len: usize, lo: i64, hi: i64) -> Vec<(i64, i64)> {
    let n = rng.range_usize(0, max_len);
    (0..n)
        .map(|_| (rng.range_i64(lo, hi), rng.range_i64(-5, 5)))
        .collect()
}

/// A full index scan visits every row exactly once, in key order.
#[test]
fn scan_is_a_sorted_permutation() {
    let mut rng = Rng::new(0x5704_0001);
    for case in 0..CASES {
        let values = random_pairs(&mut rng, 60, -20, 20);
        let desc = rng.bool();
        let heap = heap_from(&values);
        let dir = if desc {
            Direction::Desc
        } else {
            Direction::Asc
        };
        let ix = OrderedIndex::build(&heap, &[0], &[dir]);
        let scanned: Vec<i64> = ix.scan().map(|(k, _)| k[0].as_int().unwrap()).collect();
        let mut expected: Vec<i64> = values.iter().map(|&(a, _)| a).collect();
        expected.sort_unstable();
        if desc {
            expected.reverse();
        }
        assert_eq!(scanned, expected, "case {case}");
        // Row ids cover the heap exactly once.
        let mut rids: Vec<usize> = ix.scan().map(|(_, r)| r).collect();
        rids.sort_unstable();
        assert_eq!(rids, (0..values.len()).collect::<Vec<_>>(), "case {case}");
    }
}

/// Probes return exactly the rows whose key equals the probe value.
#[test]
fn probe_matches_model() {
    let mut rng = Rng::new(0x5704_0002);
    for case in 0..CASES {
        let values = random_pairs(&mut rng, 60, -8, 8);
        let probe = rng.range_i64(-10, 10);
        let heap = heap_from(&values);
        let ix = OrderedIndex::build(&heap, &[0], &[Direction::Asc]);
        let got: Vec<usize> = ix
            .probe(&[Value::Int(probe)])
            .iter()
            .map(|(_, r)| *r)
            .collect();
        let want: Vec<usize> = values
            .iter()
            .enumerate()
            .filter(|(_, &(a, _))| a == probe)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, want, "case {case}: probe {probe} in {values:?}");
    }
}

/// Range scans return exactly the rows within [lo, hi], in order.
#[test]
fn range_matches_model() {
    let mut rng = Rng::new(0x5704_0003);
    for case in 0..CASES {
        let values = random_pairs(&mut rng, 60, -15, 15);
        let lo = rng.chance(0.7).then(|| rng.range_i64(-20, 20));
        let hi = rng.chance(0.7).then(|| rng.range_i64(-20, 20));
        let heap = heap_from(&values);
        let ix = OrderedIndex::build(&heap, &[0], &[Direction::Asc]);
        let lo_v = lo.map(Value::Int);
        let hi_v = hi.map(Value::Int);
        let got: Vec<i64> = ix
            .range(lo_v.as_ref(), hi_v.as_ref())
            .map(|(k, _)| k[0].as_int().unwrap())
            .collect();
        let mut want: Vec<i64> = values
            .iter()
            .map(|&(a, _)| a)
            .filter(|&a| lo.is_none_or(|l| a >= l) && hi.is_none_or(|h| a <= h))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want, "case {case}: range [{lo:?}, {hi:?}]");
    }
}

/// Composite keys sort lexicographically with mixed directions.
#[test]
fn composite_mixed_directions() {
    let mut rng = Rng::new(0x5704_0004);
    for case in 0..CASES {
        let values = random_pairs(&mut rng, 40, -5, 5);
        let heap = heap_from(&values);
        let ix = OrderedIndex::build(&heap, &[0, 1], &[Direction::Asc, Direction::Desc]);
        let keys: Vec<(i64, i64)> = ix
            .scan()
            .map(|(k, _)| (k[0].as_int().unwrap(), k[1].as_int().unwrap()))
            .collect();
        for w in keys.windows(2) {
            let ((a1, b1), (a2, b2)) = (w[0], w[1]);
            assert!(a1 < a2 || (a1 == a2 && b1 >= b2), "case {case}: {w:?}");
        }
    }
}

/// NULL keys sort last (nulls-high) and round-trip through probes.
#[test]
fn null_keys_sort_high() {
    let mut rng = Rng::new(0x5704_0005);
    for case in 0..CASES {
        let n_null = rng.range_usize(0, 5);
        let n_vals = rng.range_usize(0, 20);
        let values: Vec<i64> = (0..n_vals).map(|_| rng.range_i64(-5, 5)).collect();
        let mut h = HeapTable::new(TableId(0), 16);
        for &v in &values {
            h.append(vec![Value::Int(v), Value::Int(0)].into_boxed_slice());
        }
        for _ in 0..n_null {
            h.append(vec![Value::Null, Value::Int(0)].into_boxed_slice());
        }
        let ix = OrderedIndex::build(&h, &[0], &[Direction::Asc]);
        let scanned: Vec<Value> = ix.scan().map(|(k, _)| k[0].clone()).collect();
        // All NULLs at the end.
        let first_null = scanned.iter().position(Value::is_null);
        if let Some(p) = first_null {
            assert!(scanned[p..].iter().all(Value::is_null), "case {case}");
            assert_eq!(scanned.len() - p, n_null, "case {case}");
        } else {
            assert_eq!(n_null, 0, "case {case}");
        }
    }
}

/// Page geometry stays consistent for arbitrary row widths.
#[test]
fn page_geometry_invariants() {
    for width in [1usize, 7, 100, 4096, 9000] {
        let mut h = HeapTable::new(TableId(1), width);
        assert!(h.rows_per_page() >= 1);
        for i in 0..50 {
            h.append(vec![Value::Int(i), Value::Int(0)].into_boxed_slice());
        }
        assert_eq!(h.page_of(0), 0);
        assert!(h.page_of(49) < h.page_count());
        assert_eq!(
            h.page_count(),
            50u64.div_ceil(h.rows_per_page()),
            "width {width}"
        );
    }
}

/// The model that justifies the ordered nested-loop join: probing in
/// sorted order touches each heap page once; probing in scattered order
/// touches many more.
#[test]
fn ordered_probe_page_locality() {
    let mut h = HeapTable::new(TableId(0), 400); // ~10 rows per page
    let n = 1000i64;
    for i in 0..n {
        h.append(vec![Value::Int(i), Value::Int(0)].into_boxed_slice());
    }
    let ix = OrderedIndex::build(&h, &[0], &[Direction::Asc]);

    use fto_storage::{IoStats, PageCursor};
    let probe_sequences: [Box<dyn Fn(i64) -> i64>; 2] =
        [Box::new(|i| i), Box::new(|i| (i * 617) % 1000)];
    let mut costs = Vec::new();
    for seq in &probe_sequences {
        let mut io = IoStats::new();
        let mut cursor = PageCursor::new();
        for i in 0..n {
            for (_, rid) in ix.probe(&[Value::Int(seq(i))]) {
                cursor.touch(h.page_of(*rid), &mut io);
            }
        }
        costs.push(io.weighted_page_cost());
    }
    assert!(
        costs[0] * 5.0 < costs[1],
        "ordered {} vs scattered {}",
        costs[0],
        costs[1]
    );
}
