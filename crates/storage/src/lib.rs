//! In-memory storage with page-level I/O accounting.
//!
//! The paper's evaluation ran on a striped-disk RS/6000; this crate is the
//! laptop-scale substitute documented in DESIGN.md. Tables live in memory,
//! but every access path charges a simulated page model:
//!
//! * heap rows are packed into fixed-size logical pages
//!   ([`HeapTable::page_of`]);
//! * sequential page reads (table scans, clustered index scans) and random
//!   page reads (unclustered probes) are tallied separately in
//!   [`IoStats`];
//! * consecutive probes that land on the most recently read page are free
//!   ([`PageCursor`]) — which is precisely the effect the paper's *ordered
//!   nested-loop join* exploits: sorting the outer makes inner probes
//!   cluster, turning random I/O into quasi-sequential I/O.

#![deny(missing_docs)]

pub mod db;
pub mod heap;
pub mod index;
pub mod io;
pub mod scan;
pub mod spill;

pub use db::Database;
pub use heap::HeapTable;
pub use index::OrderedIndex;
pub use io::{IoStats, PageCursor, PAGE_SIZE};
pub use scan::{partition_bounds, HeapScanState, IndexScanState};
pub use spill::{BufferPool, SpillCursor, SpillFile};
