//! Simulated page I/O accounting.

use std::fmt;

/// Logical page size in bytes. Matches the 4 KiB pages DB2 used.
pub const PAGE_SIZE: usize = 4096;

/// Counters for simulated I/O, accumulated during execution.
///
/// The cost model and the benchmark harness read these to report the
/// *shape* the paper measures: plans that turn random probes into
/// sequential access show dramatically lower `random_pages`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages read sequentially (table scans, clustered range scans).
    pub sequential_pages: u64,
    /// Pages read at random (unclustered probes, page jumps).
    pub random_pages: u64,
    /// Index leaf/internal page touches.
    pub index_pages: u64,
    /// Rows materialized by sorts (spill proxy).
    pub sort_rows: u64,
    /// Rows produced by scans.
    pub rows_read: u64,
}

impl IoStats {
    /// Zeroed counters.
    pub fn new() -> IoStats {
        IoStats::default()
    }

    /// Adds another set of counters into this one.
    pub fn merge(&mut self, other: &IoStats) {
        self.sequential_pages += other.sequential_pages;
        self.random_pages += other.random_pages;
        self.index_pages += other.index_pages;
        self.sort_rows += other.sort_rows;
        self.rows_read += other.rows_read;
    }

    /// A single scalar summary used for comparing plans in reports:
    /// random pages are weighted heavier than sequential ones, mirroring
    /// the cost model's constants.
    pub fn weighted_page_cost(&self) -> f64 {
        self.sequential_pages as f64 + 4.0 * self.random_pages as f64 + self.index_pages as f64
    }

    /// The counters accumulated since `earlier` was captured, i.e.
    /// `self - earlier` field by field. Counters are monotonically
    /// increasing, so `earlier` must be a snapshot of this same stream
    /// taken before `self`.
    pub fn delta_since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            sequential_pages: self.sequential_pages - earlier.sequential_pages,
            random_pages: self.random_pages - earlier.random_pages,
            index_pages: self.index_pages - earlier.index_pages,
            sort_rows: self.sort_rows - earlier.sort_rows,
            rows_read: self.rows_read - earlier.rows_read,
        }
    }

    /// `self - other` when every field of `other` is ≤ the matching field
    /// of `self`; `None` otherwise. Used by metric rollups to detect
    /// attribution bugs (a child charged more than its parent observed).
    pub fn checked_sub(&self, other: &IoStats) -> Option<IoStats> {
        Some(IoStats {
            sequential_pages: self.sequential_pages.checked_sub(other.sequential_pages)?,
            random_pages: self.random_pages.checked_sub(other.random_pages)?,
            index_pages: self.index_pages.checked_sub(other.index_pages)?,
            sort_rows: self.sort_rows.checked_sub(other.sort_rows)?,
            rows_read: self.rows_read.checked_sub(other.rows_read)?,
        })
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seq_pages={} rand_pages={} index_pages={} sort_rows={} rows_read={}",
            self.sequential_pages,
            self.random_pages,
            self.index_pages,
            self.sort_rows,
            self.rows_read
        )
    }
}

/// Tracks the most recently touched page of one access path, so that
/// consecutive touches of the same page cost nothing and forward moves to
/// the adjacent page count as sequential rather than random I/O.
///
/// The very first touch has no predecessor, so its charge is a policy
/// choice: a heap scan's first page is the head of a sequential walk
/// ([`PageCursor::new`]), while an unclustered probe stream's first fetch
/// is a seek like every other ([`PageCursor::probing`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct PageCursor {
    last_page: Option<u64>,
    first_touch_random: bool,
}

impl PageCursor {
    /// A cursor that has touched nothing; the first touch is charged as
    /// sequential (scan semantics).
    pub fn new() -> PageCursor {
        PageCursor::default()
    }

    /// A cursor for unclustered probe streams: the first touch is charged
    /// as a random page, since a probe's opening fetch pays a full seek —
    /// charging it as sequential undercounts random I/O by one page per
    /// probe stream.
    pub fn probing() -> PageCursor {
        PageCursor {
            last_page: None,
            first_touch_random: true,
        }
    }

    /// Records a touch of `page`, charging `stats` appropriately:
    /// same page — free; next page — sequential; anything else — random.
    /// The first touch follows the cursor's policy (see [`PageCursor::new`]
    /// vs [`PageCursor::probing`]).
    pub fn touch(&mut self, page: u64, stats: &mut IoStats) {
        match self.last_page {
            Some(last) if last == page => {}
            Some(last) if page == last + 1 => {
                stats.sequential_pages += 1;
                self.last_page = Some(page);
            }
            None => {
                if self.first_touch_random {
                    stats.random_pages += 1;
                } else {
                    stats.sequential_pages += 1;
                }
                self.last_page = Some(page);
            }
            _ => {
                stats.random_pages += 1;
                self.last_page = Some(page);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_touches() {
        let mut c = PageCursor::new();
        let mut s = IoStats::new();
        for p in 0..5 {
            c.touch(p, &mut s);
        }
        assert_eq!(s.sequential_pages, 5);
        assert_eq!(s.random_pages, 0);
    }

    #[test]
    fn repeated_touch_is_free() {
        let mut c = PageCursor::new();
        let mut s = IoStats::new();
        c.touch(3, &mut s);
        c.touch(3, &mut s);
        c.touch(3, &mut s);
        assert_eq!(s.sequential_pages, 1);
        assert_eq!(s.random_pages, 0);
    }

    #[test]
    fn jumps_are_random() {
        let mut c = PageCursor::new();
        let mut s = IoStats::new();
        c.touch(0, &mut s);
        c.touch(9, &mut s);
        c.touch(2, &mut s); // backward jump
        assert_eq!(s.sequential_pages, 1);
        assert_eq!(s.random_pages, 2);
    }

    #[test]
    fn ordered_probes_beat_unordered() {
        // The heart of the ordered-NLJ effect: the same set of page
        // touches costs far less in sorted order.
        let pages: Vec<u64> = (0..100).map(|i| (i * 37) % 50).collect();
        let mut sorted = pages.clone();
        sorted.sort_unstable();

        let mut s_rand = IoStats::new();
        let mut c = PageCursor::new();
        for &p in &pages {
            c.touch(p, &mut s_rand);
        }
        let mut s_sorted = IoStats::new();
        let mut c = PageCursor::new();
        for &p in &sorted {
            c.touch(p, &mut s_sorted);
        }
        assert!(s_sorted.weighted_page_cost() < s_rand.weighted_page_cost() / 2.0);
        assert_eq!(s_sorted.random_pages, 0);
    }

    #[test]
    fn probing_cursor_charges_first_touch_as_random() {
        let mut c = PageCursor::probing();
        let mut s = IoStats::new();
        c.touch(7, &mut s);
        assert_eq!(s.random_pages, 1);
        assert_eq!(s.sequential_pages, 0);
        // After the first touch the usual adjacency rules apply.
        c.touch(7, &mut s);
        c.touch(8, &mut s);
        assert_eq!(s.random_pages, 1);
        assert_eq!(s.sequential_pages, 1);
    }

    #[test]
    fn delta_and_checked_sub() {
        let a = IoStats {
            sequential_pages: 5,
            random_pages: 3,
            index_pages: 2,
            sort_rows: 1,
            rows_read: 9,
        };
        let b = IoStats {
            sequential_pages: 2,
            random_pages: 1,
            index_pages: 2,
            sort_rows: 0,
            rows_read: 4,
        };
        let d = a.delta_since(&b);
        assert_eq!(d.sequential_pages, 3);
        assert_eq!(d.rows_read, 5);
        assert_eq!(a.checked_sub(&b), Some(d));
        // Subtracting more than was charged is an attribution bug.
        assert_eq!(b.checked_sub(&a), None);
    }

    #[test]
    fn merge_and_display() {
        let mut a = IoStats {
            sequential_pages: 1,
            random_pages: 2,
            index_pages: 3,
            sort_rows: 4,
            rows_read: 5,
        };
        a.merge(&a.clone());
        assert_eq!(a.sequential_pages, 2);
        assert_eq!(a.rows_read, 10);
        assert!(a.to_string().contains("rand_pages=4"));
        assert_eq!(a.weighted_page_cost(), 2.0 + 16.0 + 6.0);
    }
}
