//! Simulated page I/O accounting.

use std::fmt;

/// Logical page size in bytes. Matches the 4 KiB pages DB2 used.
pub const PAGE_SIZE: usize = 4096;

/// Counters for simulated I/O, accumulated during execution.
///
/// The cost model and the benchmark harness read these to report the
/// *shape* the paper measures: plans that turn random probes into
/// sequential access show dramatically lower `random_pages`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages read sequentially (table scans, clustered range scans).
    pub sequential_pages: u64,
    /// Pages read at random (unclustered probes, page jumps).
    pub random_pages: u64,
    /// Index leaf/internal page touches.
    pub index_pages: u64,
    /// Rows materialized by sorts (spill proxy).
    pub sort_rows: u64,
    /// Rows produced by scans.
    pub rows_read: u64,
    /// Pages written to spill files (external sort runs, hash
    /// partitions). Spill writes are always sequential appends.
    pub spill_pages_written: u64,
    /// Pages read back from spill files (merge passes, partition
    /// replays).
    pub spill_pages_read: u64,
    /// Page requests satisfied by the bounded buffer pool without a
    /// charge. Zero unless a memory budget (and therefore a pool) is
    /// active.
    pub pool_hits: u64,
    /// Page requests that missed the buffer pool and paid the usual
    /// sequential/random charge. Zero unless a pool is active.
    pub pool_misses: u64,
}

impl IoStats {
    /// Zeroed counters.
    pub fn new() -> IoStats {
        IoStats::default()
    }

    /// Adds another set of counters into this one.
    pub fn merge(&mut self, other: &IoStats) {
        self.sequential_pages += other.sequential_pages;
        self.random_pages += other.random_pages;
        self.index_pages += other.index_pages;
        self.sort_rows += other.sort_rows;
        self.rows_read += other.rows_read;
        self.spill_pages_written += other.spill_pages_written;
        self.spill_pages_read += other.spill_pages_read;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
    }

    /// A single scalar summary used for comparing plans in reports:
    /// random pages are weighted heavier than sequential ones, mirroring
    /// the cost model's constants. Spill traffic is sequential by
    /// construction (runs are appended and merged front to back), so both
    /// spill directions count at the sequential rate.
    pub fn weighted_page_cost(&self) -> f64 {
        self.sequential_pages as f64
            + 4.0 * self.random_pages as f64
            + self.index_pages as f64
            + self.spill_pages_written as f64
            + self.spill_pages_read as f64
    }

    /// The counters accumulated since `earlier` was captured, i.e.
    /// `self - earlier` field by field. Counters are monotonically
    /// increasing, so `earlier` must be a snapshot of this same stream
    /// taken before `self`.
    pub fn delta_since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            sequential_pages: self.sequential_pages - earlier.sequential_pages,
            random_pages: self.random_pages - earlier.random_pages,
            index_pages: self.index_pages - earlier.index_pages,
            sort_rows: self.sort_rows - earlier.sort_rows,
            rows_read: self.rows_read - earlier.rows_read,
            spill_pages_written: self.spill_pages_written - earlier.spill_pages_written,
            spill_pages_read: self.spill_pages_read - earlier.spill_pages_read,
            pool_hits: self.pool_hits - earlier.pool_hits,
            pool_misses: self.pool_misses - earlier.pool_misses,
        }
    }

    /// `self - other` when every field of `other` is ≤ the matching field
    /// of `self`; `None` otherwise. Used by metric rollups to detect
    /// attribution bugs (a child charged more than its parent observed).
    pub fn checked_sub(&self, other: &IoStats) -> Option<IoStats> {
        Some(IoStats {
            sequential_pages: self.sequential_pages.checked_sub(other.sequential_pages)?,
            random_pages: self.random_pages.checked_sub(other.random_pages)?,
            index_pages: self.index_pages.checked_sub(other.index_pages)?,
            sort_rows: self.sort_rows.checked_sub(other.sort_rows)?,
            rows_read: self.rows_read.checked_sub(other.rows_read)?,
            spill_pages_written: self
                .spill_pages_written
                .checked_sub(other.spill_pages_written)?,
            spill_pages_read: self.spill_pages_read.checked_sub(other.spill_pages_read)?,
            pool_hits: self.pool_hits.checked_sub(other.pool_hits)?,
            pool_misses: self.pool_misses.checked_sub(other.pool_misses)?,
        })
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seq_pages={} rand_pages={} index_pages={} sort_rows={} rows_read={}",
            self.sequential_pages,
            self.random_pages,
            self.index_pages,
            self.sort_rows,
            self.rows_read
        )?;
        // Spill and pool counters only appear once something used them,
        // keeping the common in-memory case's output stable.
        if self.spill_pages_written != 0 || self.spill_pages_read != 0 {
            write!(
                f,
                " spill_w={} spill_r={}",
                self.spill_pages_written, self.spill_pages_read
            )?;
        }
        if self.pool_hits != 0 || self.pool_misses != 0 {
            write!(
                f,
                " pool_hits={} pool_misses={}",
                self.pool_hits, self.pool_misses
            )?;
        }
        Ok(())
    }
}

/// Tracks the most recently touched page of one access path, so that
/// consecutive touches of the same page cost nothing and forward moves to
/// the adjacent page count as sequential rather than random I/O.
///
/// The very first touch has no predecessor, so its charge is a policy
/// choice: a heap scan's first page is the head of a sequential walk
/// ([`PageCursor::new`]), while an unclustered probe stream's first fetch
/// is a seek like every other ([`PageCursor::probing`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct PageCursor {
    last_page: Option<u64>,
    first_touch_random: bool,
}

impl PageCursor {
    /// A cursor that has touched nothing; the first touch is charged as
    /// sequential (scan semantics).
    pub fn new() -> PageCursor {
        PageCursor::default()
    }

    /// A cursor for unclustered probe streams: the first touch is charged
    /// as a random page, since a probe's opening fetch pays a full seek —
    /// charging it as sequential undercounts random I/O by one page per
    /// probe stream.
    pub fn probing() -> PageCursor {
        PageCursor {
            last_page: None,
            first_touch_random: true,
        }
    }

    /// Records a touch of `page`, charging `stats` appropriately:
    /// same page — free; next page — sequential; anything else — random.
    /// The first touch follows the cursor's policy (see [`PageCursor::new`]
    /// vs [`PageCursor::probing`]).
    pub fn touch(&mut self, page: u64, stats: &mut IoStats) {
        match self.last_page {
            Some(last) if last == page => {}
            Some(last) if page == last + 1 => {
                stats.sequential_pages += 1;
                self.last_page = Some(page);
            }
            None => {
                if self.first_touch_random {
                    stats.random_pages += 1;
                } else {
                    stats.sequential_pages += 1;
                }
                self.last_page = Some(page);
            }
            _ => {
                stats.random_pages += 1;
                self.last_page = Some(page);
            }
        }
    }

    /// As [`PageCursor::touch`], but routed through a bounded
    /// [`crate::BufferPool`] when one is active. Repeated touches of the
    /// current page stay free either way; a page-change touch first
    /// consults the pool — a resident page is a free *hit*, a miss pays
    /// the usual sequential/random charge. With `pool` `None` this is
    /// exactly `touch`, bit for bit, which is how the unbudgeted engine
    /// keeps its historical accounting. `tag` namespaces page numbers per
    /// storage object (table/index id) so distinct objects never alias.
    ///
    /// Invariant: when a pool is active, `pool_misses` on this cursor
    /// equals the sequential + random pages it charges.
    pub fn touch_pooled(
        &mut self,
        tag: u64,
        page: u64,
        stats: &mut IoStats,
        pool: Option<&mut crate::BufferPool>,
    ) {
        let Some(pool) = pool else {
            self.touch(page, stats);
            return;
        };
        if self.last_page == Some(page) {
            return;
        }
        if pool.touch(tag, page) {
            stats.pool_hits += 1;
            self.last_page = Some(page);
        } else {
            stats.pool_misses += 1;
            self.touch(page, stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_touches() {
        let mut c = PageCursor::new();
        let mut s = IoStats::new();
        for p in 0..5 {
            c.touch(p, &mut s);
        }
        assert_eq!(s.sequential_pages, 5);
        assert_eq!(s.random_pages, 0);
    }

    #[test]
    fn repeated_touch_is_free() {
        let mut c = PageCursor::new();
        let mut s = IoStats::new();
        c.touch(3, &mut s);
        c.touch(3, &mut s);
        c.touch(3, &mut s);
        assert_eq!(s.sequential_pages, 1);
        assert_eq!(s.random_pages, 0);
    }

    #[test]
    fn jumps_are_random() {
        let mut c = PageCursor::new();
        let mut s = IoStats::new();
        c.touch(0, &mut s);
        c.touch(9, &mut s);
        c.touch(2, &mut s); // backward jump
        assert_eq!(s.sequential_pages, 1);
        assert_eq!(s.random_pages, 2);
    }

    #[test]
    fn ordered_probes_beat_unordered() {
        // The heart of the ordered-NLJ effect: the same set of page
        // touches costs far less in sorted order.
        let pages: Vec<u64> = (0..100).map(|i| (i * 37) % 50).collect();
        let mut sorted = pages.clone();
        sorted.sort_unstable();

        let mut s_rand = IoStats::new();
        let mut c = PageCursor::new();
        for &p in &pages {
            c.touch(p, &mut s_rand);
        }
        let mut s_sorted = IoStats::new();
        let mut c = PageCursor::new();
        for &p in &sorted {
            c.touch(p, &mut s_sorted);
        }
        assert!(s_sorted.weighted_page_cost() < s_rand.weighted_page_cost() / 2.0);
        assert_eq!(s_sorted.random_pages, 0);
    }

    #[test]
    fn probing_cursor_charges_first_touch_as_random() {
        let mut c = PageCursor::probing();
        let mut s = IoStats::new();
        c.touch(7, &mut s);
        assert_eq!(s.random_pages, 1);
        assert_eq!(s.sequential_pages, 0);
        // After the first touch the usual adjacency rules apply.
        c.touch(7, &mut s);
        c.touch(8, &mut s);
        assert_eq!(s.random_pages, 1);
        assert_eq!(s.sequential_pages, 1);
    }

    #[test]
    fn pooled_touches_hit_after_first_fault() {
        let mut pool = crate::BufferPool::with_capacity_pages(8);
        let mut c = PageCursor::new();
        let mut s = IoStats::new();
        // First pass over pages 0..4 faults every page in.
        for p in 0..4 {
            c.touch_pooled(1, p, &mut s, Some(&mut pool));
        }
        assert_eq!(s.pool_misses, 4);
        assert_eq!(s.pool_hits, 0);
        assert_eq!(s.sequential_pages, 4);
        // Second pass with a fresh cursor: everything is resident.
        let mut c2 = PageCursor::new();
        for p in 0..4 {
            c2.touch_pooled(1, p, &mut s, Some(&mut pool));
        }
        assert_eq!(s.pool_hits, 4);
        assert_eq!(s.sequential_pages, 4, "hits charge nothing");
        // Misses equal charged pages — the documented invariant.
        assert_eq!(s.pool_misses, s.sequential_pages + s.random_pages);
        // Without a pool, behavior is plain touch.
        let mut c3 = PageCursor::new();
        let mut s2 = IoStats::new();
        c3.touch_pooled(1, 0, &mut s2, None);
        assert_eq!(s2.sequential_pages, 1);
        assert_eq!(s2.pool_hits + s2.pool_misses, 0);
    }

    #[test]
    fn delta_and_checked_sub() {
        let a = IoStats {
            sequential_pages: 5,
            random_pages: 3,
            index_pages: 2,
            sort_rows: 1,
            rows_read: 9,
            spill_pages_written: 6,
            spill_pages_read: 6,
            pool_hits: 2,
            pool_misses: 1,
        };
        let b = IoStats {
            sequential_pages: 2,
            random_pages: 1,
            index_pages: 2,
            sort_rows: 0,
            rows_read: 4,
            spill_pages_written: 4,
            spill_pages_read: 2,
            pool_hits: 1,
            pool_misses: 0,
        };
        let d = a.delta_since(&b);
        assert_eq!(d.sequential_pages, 3);
        assert_eq!(d.rows_read, 5);
        assert_eq!(d.spill_pages_written, 2);
        assert_eq!(d.spill_pages_read, 4);
        assert_eq!(d.pool_hits, 1);
        assert_eq!(a.checked_sub(&b), Some(d));
        // Subtracting more than was charged is an attribution bug.
        assert_eq!(b.checked_sub(&a), None);
    }

    #[test]
    fn merge_and_display() {
        let mut a = IoStats {
            sequential_pages: 1,
            random_pages: 2,
            index_pages: 3,
            sort_rows: 4,
            rows_read: 5,
            ..IoStats::new()
        };
        a.merge(&a.clone());
        assert_eq!(a.sequential_pages, 2);
        assert_eq!(a.rows_read, 10);
        assert!(a.to_string().contains("rand_pages=4"));
        // Zero spill/pool counters stay out of the rendered form.
        assert!(!a.to_string().contains("spill_w"));
        assert!(!a.to_string().contains("pool_hits"));
        assert_eq!(a.weighted_page_cost(), 2.0 + 16.0 + 6.0);
        a.spill_pages_written = 3;
        a.spill_pages_read = 2;
        a.pool_hits = 1;
        assert!(a.to_string().contains("spill_w=3 spill_r=2"));
        assert!(a.to_string().contains("pool_hits=1 pool_misses=0"));
        assert_eq!(a.weighted_page_cost(), 2.0 + 16.0 + 6.0 + 5.0);
    }
}
