//! Batched scan cursors with incremental page accounting.
//!
//! The streaming executor pulls rows in batches; these cursors hold the
//! scan position between pulls and charge [`IoStats`] as pages are
//! actually touched, rather than charging a whole table or index up
//! front. That is what makes early termination (LIMIT, Top-N with a
//! selective prefix) cheaper in the simulated I/O model: pages after the
//! stopping point are never paid for.
//!
//! The cursors deliberately hold no reference to the table — callers pass
//! the [`HeapTable`] on every pull — so executor operators stay free of
//! borrow lifetimes.

use crate::heap::HeapTable;
use crate::index::{OrderedIndex, ENTRIES_PER_LEAF};
use crate::io::{IoStats, PageCursor};
use fto_common::{Row, Value};

/// Position of an in-progress sequential heap scan.
#[derive(Debug, Default)]
pub struct HeapScanState {
    next_rid: usize,
    cursor: PageCursor,
}

impl HeapScanState {
    /// A scan positioned before the first row.
    pub fn new() -> HeapScanState {
        HeapScanState::default()
    }

    /// True once every row has been returned.
    pub fn exhausted(&self, heap: &HeapTable) -> bool {
        self.next_rid >= heap.row_count() as usize
    }

    /// Returns the next batch of at most `max_rows` rows (empty when the
    /// scan is exhausted), charging one sequential page per page boundary
    /// actually crossed. A scan run to completion therefore charges
    /// exactly [`HeapTable::page_count`] pages; a scan abandoned early
    /// charges only the pages behind the rows it produced.
    pub fn next_batch(&mut self, heap: &HeapTable, max_rows: usize, io: &mut IoStats) -> Vec<Row> {
        let total = heap.row_count() as usize;
        let end = (self.next_rid + max_rows.max(1)).min(total);
        let mut out = Vec::with_capacity(end.saturating_sub(self.next_rid));
        for rid in self.next_rid..end {
            self.cursor.touch(heap.page_of(rid), io);
            io.rows_read += 1;
            out.push(heap.row(rid).clone());
        }
        self.next_rid = end;
        out
    }
}

/// Position of an in-progress (possibly reversed, possibly range-limited)
/// index scan that fetches full heap rows.
///
/// The state is a pair of entry positions into the index, not a
/// materialized row-id list: opening costs two binary searches regardless
/// of how many entries match, and a scan abandoned after `k` rows (LIMIT,
/// Top-N) has done O(k) work total. Reverse scans walk the same interval
/// from the high end.
#[derive(Debug)]
pub struct IndexScanState {
    /// Remaining unconsumed entry positions, `[start, end)` in index order.
    start: usize,
    end: usize,
    reverse: bool,
    /// Leaf page of the most recently consumed entry, for incremental
    /// leaf-page charging.
    last_leaf: Option<u64>,
    cursor: PageCursor,
}

impl IndexScanState {
    /// Opens a scan over `index` restricted to leading-key values in
    /// `[lo, hi]` (either bound optional), delivering rows in index order
    /// or, with `reverse`, in exactly the reversed order. No row ids are
    /// resolved here; entries are consumed lazily per batch.
    pub fn open(
        index: &OrderedIndex,
        lo: Option<&Value>,
        hi: Option<&Value>,
        reverse: bool,
    ) -> IndexScanState {
        let (start, end) = index.range_positions(lo, hi);
        IndexScanState {
            start,
            end,
            reverse,
            last_leaf: None,
            cursor: PageCursor::new(),
        }
    }

    /// True once every matching row has been returned.
    pub fn exhausted(&self) -> bool {
        self.start >= self.end
    }

    /// Returns the next batch of at most `max_rows` rows, resolving row
    /// ids from `index` as it goes. Each index leaf of
    /// [`ENTRIES_PER_LEAF`] entries is charged once when first entered,
    /// and each fetched heap row goes through a [`PageCursor`], so probes
    /// landing on the page just read are free — the clustering effect the
    /// paper's ordered access paths exploit. Pages past the point where
    /// the caller stops pulling are never charged.
    pub fn next_batch(
        &mut self,
        index: &OrderedIndex,
        heap: &HeapTable,
        max_rows: usize,
        io: &mut IoStats,
    ) -> Vec<Row> {
        let take = max_rows.max(1).min(self.end - self.start.min(self.end));
        let mut out = Vec::with_capacity(take);
        for _ in 0..take {
            let pos = if self.reverse {
                self.end - 1
            } else {
                self.start
            };
            let leaf = pos as u64 / ENTRIES_PER_LEAF;
            if self.last_leaf != Some(leaf) {
                io.index_pages += 1;
                self.last_leaf = Some(leaf);
            }
            let rid = index.rid_at(pos);
            self.cursor.touch(heap.page_of(rid), io);
            io.rows_read += 1;
            out.push(heap.row(rid).clone());
            if self.reverse {
                self.end -= 1;
            } else {
                self.start += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fto_common::{Direction, TableId};

    fn heap(n: i64) -> HeapTable {
        // 100-byte rows: 40 rows per page.
        let mut h = HeapTable::new(TableId(0), 100);
        for i in 0..n {
            h.append(vec![Value::Int(i), Value::Int(i % 3)].into_boxed_slice());
        }
        h
    }

    #[test]
    fn full_heap_scan_charges_every_page_once() {
        let h = heap(100);
        let mut s = HeapScanState::new();
        let mut io = IoStats::new();
        let mut rows = Vec::new();
        loop {
            let b = s.next_batch(&h, 7, &mut io);
            if b.is_empty() {
                break;
            }
            rows.extend(b);
        }
        assert!(s.exhausted(&h));
        assert_eq!(rows.len(), 100);
        assert_eq!(io.sequential_pages, h.page_count());
        assert_eq!(io.random_pages, 0);
        assert_eq!(io.rows_read, 100);
    }

    #[test]
    fn abandoned_heap_scan_pays_only_pages_read() {
        let h = heap(100); // 3 pages
        let mut s = HeapScanState::new();
        let mut io = IoStats::new();
        let b = s.next_batch(&h, 10, &mut io);
        assert_eq!(b.len(), 10);
        assert_eq!(io.sequential_pages, 1);
        assert!(io.sequential_pages < h.page_count());
    }

    #[test]
    fn empty_heap_scan_is_free() {
        let h = heap(0);
        let mut s = HeapScanState::new();
        let mut io = IoStats::new();
        assert!(s.next_batch(&h, 8, &mut io).is_empty());
        assert_eq!(io.sequential_pages, 0);
        assert_eq!(io.rows_read, 0);
    }

    #[test]
    fn index_scan_delivers_key_order_and_reverse() {
        let mut h = HeapTable::new(TableId(0), 100);
        for i in [5i64, 1, 3, 2, 4] {
            h.append(vec![Value::Int(i), Value::Int(0)].into_boxed_slice());
        }
        let ix = OrderedIndex::build(&h, &[0], &[Direction::Asc]);
        let mut io = IoStats::new();
        let mut s = IndexScanState::open(&ix, None, None, false);
        let mut keys = Vec::new();
        loop {
            let b = s.next_batch(&ix, &h, 2, &mut io);
            if b.is_empty() {
                break;
            }
            keys.extend(b.iter().map(|r| r[0].as_int().unwrap()));
        }
        assert_eq!(keys, vec![1, 2, 3, 4, 5]);
        assert!(s.exhausted());

        let mut rio = IoStats::new();
        let mut s = IndexScanState::open(&ix, None, None, true);
        let b = s.next_batch(&ix, &h, 10, &mut rio);
        let keys: Vec<i64> = b.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(keys, vec![5, 4, 3, 2, 1]);
    }

    #[test]
    fn index_scan_range_bounds() {
        let mut h = HeapTable::new(TableId(0), 100);
        for i in 0..10i64 {
            h.append(vec![Value::Int(i), Value::Int(0)].into_boxed_slice());
        }
        let ix = OrderedIndex::build(&h, &[0], &[Direction::Asc]);
        let mut io = IoStats::new();
        let mut s = IndexScanState::open(&ix, Some(&Value::Int(3)), Some(&Value::Int(6)), false);
        let b = s.next_batch(&ix, &h, 100, &mut io);
        let keys: Vec<i64> = b.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(keys, vec![3, 4, 5, 6]);
    }

    #[test]
    fn index_scan_charges_leaves_incrementally() {
        let mut h = HeapTable::new(TableId(0), 100);
        for i in 0..1000i64 {
            h.append(vec![Value::Int(i), Value::Int(0)].into_boxed_slice());
        }
        let ix = OrderedIndex::build(&h, &[0], &[Direction::Asc]);
        assert_eq!(ix.leaf_pages(), 4);

        // Consuming only the first batch touches one leaf.
        let mut io = IoStats::new();
        let mut s = IndexScanState::open(&ix, None, None, false);
        s.next_batch(&ix, &h, 100, &mut io);
        assert_eq!(io.index_pages, 1);

        // Run to completion: exactly leaf_pages() leaves.
        let mut io = IoStats::new();
        let mut s = IndexScanState::open(&ix, None, None, false);
        while !s.next_batch(&ix, &h, 100, &mut io).is_empty() {}
        assert_eq!(io.index_pages, ix.leaf_pages());
    }

    #[test]
    fn reverse_index_scan_stays_lazy_and_bounded() {
        let mut h = HeapTable::new(TableId(0), 100);
        for i in 0..1000i64 {
            h.append(vec![Value::Int(i), Value::Int(0)].into_boxed_slice());
        }
        let ix = OrderedIndex::build(&h, &[0], &[Direction::Asc]);

        // Pulling 10 rows in reverse touches one leaf (the last) and only
        // the heap pages behind those 10 rows.
        let mut io = IoStats::new();
        let mut s = IndexScanState::open(&ix, None, None, true);
        let b = s.next_batch(&ix, &h, 10, &mut io);
        let keys: Vec<i64> = b.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(keys, (990..1000).rev().collect::<Vec<i64>>());
        assert_eq!(io.index_pages, 1);
        assert_eq!(io.rows_read, 10);
        assert!(!s.exhausted());
    }
}
