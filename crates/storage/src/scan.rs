//! Batched scan cursors with incremental page accounting.
//!
//! The streaming executor pulls rows in batches; these cursors hold the
//! scan position between pulls and charge [`IoStats`] as pages are
//! actually touched, rather than charging a whole table or index up
//! front. That is what makes early termination (LIMIT, Top-N with a
//! selective prefix) cheaper in the simulated I/O model: pages after the
//! stopping point are never paid for.
//!
//! The cursors deliberately hold no reference to the table — callers pass
//! the [`HeapTable`] on every pull — so executor operators stay free of
//! borrow lifetimes.

use crate::heap::HeapTable;
use crate::index::{OrderedIndex, ENTRIES_PER_LEAF};
use crate::io::{IoStats, PageCursor};
use fto_common::{Batch, BatchBuilder, Row, Value};

/// Splits `[lo, hi)` into `parts` deterministic contiguous chunks and
/// returns the bounds of chunk `part`, with every *interior* cut rounded
/// up to an absolute multiple of `align`. Chunks are balanced to within
/// one alignment unit, cover the range exactly, and never overlap — the
/// contract partitioned scans rely on so that P workers together touch
/// each page (or index leaf) exactly as often as one worker would.
pub fn partition_bounds(
    (lo, hi): (usize, usize),
    part: usize,
    parts: usize,
    align: usize,
) -> (usize, usize) {
    assert!(parts > 0 && part < parts, "partition {part} of {parts}");
    assert!(lo <= hi, "inverted range {lo}..{hi}");
    let align = align.max(1);
    let len = hi - lo;
    let cut = |k: usize| -> usize {
        if k == 0 {
            return lo;
        }
        if k == parts {
            return hi;
        }
        // Proportional cut, rounded up to the alignment boundary.
        let raw = lo + (len * k) / parts;
        (raw.div_ceil(align) * align).clamp(lo, hi)
    };
    (cut(part), cut(part + 1))
}

/// Position of an in-progress sequential heap scan, possibly restricted
/// to one page-aligned partition of the heap.
#[derive(Debug)]
pub struct HeapScanState {
    next_rid: usize,
    /// Exclusive upper bound; `usize::MAX` means "to the end of the heap".
    end_rid: usize,
    cursor: PageCursor,
}

impl Default for HeapScanState {
    fn default() -> Self {
        HeapScanState::new()
    }
}

impl HeapScanState {
    /// A scan positioned before the first row, covering the whole heap.
    pub fn new() -> HeapScanState {
        HeapScanState {
            next_rid: 0,
            end_rid: usize::MAX,
            cursor: PageCursor::new(),
        }
    }

    /// A scan over partition `part` of `parts`: the heap's page range is
    /// split into `parts` contiguous page-aligned chunks, and this cursor
    /// walks chunk `part`. Partitions are deterministic, disjoint, and
    /// cover every row; because cuts fall on page boundaries, the
    /// partitions together charge exactly the pages a full serial scan
    /// charges.
    pub fn partition(heap: &HeapTable, part: usize, parts: usize) -> HeapScanState {
        let pages = heap.page_count() as usize;
        let (lo_page, hi_page) = partition_bounds((0, pages), part, parts, 1);
        let rpp = heap.rows_per_page() as usize;
        let total = heap.row_count() as usize;
        HeapScanState {
            next_rid: (lo_page * rpp).min(total),
            end_rid: (hi_page * rpp).min(total),
            cursor: PageCursor::new(),
        }
    }

    /// True once every row has been returned.
    pub fn exhausted(&self, heap: &HeapTable) -> bool {
        self.next_rid >= (heap.row_count() as usize).min(self.end_rid)
    }

    /// Returns the next batch of at most `max_rows` rows (empty when the
    /// scan is exhausted), charging one sequential page per page boundary
    /// actually crossed. A scan run to completion therefore charges
    /// exactly [`HeapTable::page_count`] pages; a scan abandoned early
    /// charges only the pages behind the rows it produced.
    pub fn next_batch(&mut self, heap: &HeapTable, max_rows: usize, io: &mut IoStats) -> Vec<Row> {
        let total = (heap.row_count() as usize).min(self.end_rid);
        let end = (self.next_rid + max_rows.max(1)).min(total);
        let mut out = Vec::with_capacity(end.saturating_sub(self.next_rid));
        for rid in self.next_rid..end {
            self.cursor.touch(heap.page_of(rid), io);
            io.rows_read += 1;
            out.push(heap.row(rid).clone());
        }
        self.next_rid = end;
        out
    }

    /// As [`HeapScanState::next_batch`], but transposes straight into a
    /// columnar [`Batch`] (no intermediate row vector). Page and row
    /// charging is identical.
    pub fn next_columns(&mut self, heap: &HeapTable, max_rows: usize, io: &mut IoStats) -> Batch {
        self.next_columns_pooled(heap, max_rows, io, None)
    }

    /// As [`HeapScanState::next_columns`], but page touches go through
    /// `pool` when one is active: resident pages are free hits, misses
    /// pay the usual charge. With `pool` `None` the accounting is
    /// bit-identical to [`HeapScanState::next_columns`].
    pub fn next_columns_pooled(
        &mut self,
        heap: &HeapTable,
        max_rows: usize,
        io: &mut IoStats,
        mut pool: Option<&mut crate::BufferPool>,
    ) -> Batch {
        let total = (heap.row_count() as usize).min(self.end_rid);
        let end = (self.next_rid + max_rows.max(1)).min(total);
        if self.next_rid >= end {
            return Batch::empty(0);
        }
        let tag = heap_pool_tag(heap);
        let mut b = BatchBuilder::new(heap.row(self.next_rid).len());
        for rid in self.next_rid..end {
            self.cursor
                .touch_pooled(tag, heap.page_of(rid), io, pool.as_deref_mut());
            io.rows_read += 1;
            b.push_row(heap.row(rid))
                .expect("heap rows share one arity");
        }
        self.next_rid = end;
        b.finish()
    }
}

/// Buffer-pool namespace tag for a heap's pages. The pool caches heap
/// pages only — index leaf touches keep their flat per-leaf charge,
/// which already models a cached inner level.
fn heap_pool_tag(heap: &HeapTable) -> u64 {
    heap.table().0 as u64
}

/// Position of an in-progress (possibly reversed, possibly range-limited)
/// index scan that fetches full heap rows.
///
/// The state is a pair of entry positions into the index, not a
/// materialized row-id list: opening costs two binary searches regardless
/// of how many entries match, and a scan abandoned after `k` rows (LIMIT,
/// Top-N) has done O(k) work total. Reverse scans walk the same interval
/// from the high end.
#[derive(Debug)]
pub struct IndexScanState {
    /// Remaining unconsumed entry positions, `[start, end)` in index order.
    start: usize,
    end: usize,
    reverse: bool,
    /// Leaf page of the most recently consumed entry, for incremental
    /// leaf-page charging.
    last_leaf: Option<u64>,
    cursor: PageCursor,
}

impl IndexScanState {
    /// Opens a scan over `index` restricted to leading-key values in
    /// `[lo, hi]` (either bound optional), delivering rows in index order
    /// or, with `reverse`, in exactly the reversed order. No row ids are
    /// resolved here; entries are consumed lazily per batch.
    pub fn open(
        index: &OrderedIndex,
        lo: Option<&Value>,
        hi: Option<&Value>,
        reverse: bool,
    ) -> IndexScanState {
        let (start, end) = index.range_positions(lo, hi);
        IndexScanState {
            start,
            end,
            reverse,
            last_leaf: None,
            cursor: PageCursor::new(),
        }
    }

    /// [`IndexScanState::open`] restricted to partition `part` of `parts`:
    /// the matching entry interval is split into `parts` contiguous chunks
    /// with every interior cut aligned to an index-leaf boundary
    /// ([`ENTRIES_PER_LEAF`]), so no leaf is shared between partitions and
    /// the partitions together charge exactly the leaf pages a serial scan
    /// charges. `part` counts in *key* order regardless of `reverse`; a
    /// reverse scan's caller should consume partitions from high `part` to
    /// low to reproduce the serial reverse emission order.
    pub fn open_partition(
        index: &OrderedIndex,
        lo: Option<&Value>,
        hi: Option<&Value>,
        reverse: bool,
        part: usize,
        parts: usize,
    ) -> IndexScanState {
        let (start, end) = index.range_positions(lo, hi);
        let (p_lo, p_hi) = partition_bounds((start, end), part, parts, ENTRIES_PER_LEAF as usize);
        IndexScanState {
            start: p_lo,
            end: p_hi,
            reverse,
            last_leaf: None,
            cursor: PageCursor::new(),
        }
    }

    /// True once every matching row has been returned.
    pub fn exhausted(&self) -> bool {
        self.start >= self.end
    }

    /// Returns the next batch of at most `max_rows` rows, resolving row
    /// ids from `index` as it goes. Each index leaf of
    /// [`ENTRIES_PER_LEAF`] entries is charged once when first entered,
    /// and each fetched heap row goes through a [`PageCursor`], so probes
    /// landing on the page just read are free — the clustering effect the
    /// paper's ordered access paths exploit. Pages past the point where
    /// the caller stops pulling are never charged.
    pub fn next_batch(
        &mut self,
        index: &OrderedIndex,
        heap: &HeapTable,
        max_rows: usize,
        io: &mut IoStats,
    ) -> Vec<Row> {
        let take = max_rows.max(1).min(self.end - self.start.min(self.end));
        let mut out = Vec::with_capacity(take);
        for _ in 0..take {
            let pos = if self.reverse {
                self.end - 1
            } else {
                self.start
            };
            let leaf = pos as u64 / ENTRIES_PER_LEAF;
            if self.last_leaf != Some(leaf) {
                io.index_pages += 1;
                self.last_leaf = Some(leaf);
            }
            let rid = index.rid_at(pos);
            self.cursor.touch(heap.page_of(rid), io);
            io.rows_read += 1;
            out.push(heap.row(rid).clone());
            if self.reverse {
                self.end -= 1;
            } else {
                self.start += 1;
            }
        }
        out
    }

    /// As [`IndexScanState::next_batch`], but transposes straight into a
    /// columnar [`Batch`]. Leaf, page, and row charging is identical.
    pub fn next_columns(
        &mut self,
        index: &OrderedIndex,
        heap: &HeapTable,
        max_rows: usize,
        io: &mut IoStats,
    ) -> Batch {
        self.next_columns_pooled(index, heap, max_rows, io, None)
    }

    /// As [`IndexScanState::next_columns`], but heap-page fetches go
    /// through `pool` when one is active (leaf touches keep their flat
    /// charge). With `pool` `None` the accounting is bit-identical to
    /// [`IndexScanState::next_columns`].
    pub fn next_columns_pooled(
        &mut self,
        index: &OrderedIndex,
        heap: &HeapTable,
        max_rows: usize,
        io: &mut IoStats,
        mut pool: Option<&mut crate::BufferPool>,
    ) -> Batch {
        let take = max_rows.max(1).min(self.end - self.start.min(self.end));
        if take == 0 {
            return Batch::empty(0);
        }
        let tag = heap_pool_tag(heap);
        let mut b: Option<BatchBuilder> = None;
        for _ in 0..take {
            let pos = if self.reverse {
                self.end - 1
            } else {
                self.start
            };
            let leaf = pos as u64 / ENTRIES_PER_LEAF;
            if self.last_leaf != Some(leaf) {
                io.index_pages += 1;
                self.last_leaf = Some(leaf);
            }
            let rid = index.rid_at(pos);
            self.cursor
                .touch_pooled(tag, heap.page_of(rid), io, pool.as_deref_mut());
            io.rows_read += 1;
            let row = heap.row(rid);
            b.get_or_insert_with(|| BatchBuilder::new(row.len()))
                .push_row(row)
                .expect("heap rows share one arity");
            if self.reverse {
                self.end -= 1;
            } else {
                self.start += 1;
            }
        }
        b.expect("take > 0").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fto_common::{Direction, TableId};

    fn heap(n: i64) -> HeapTable {
        // 100-byte rows: 40 rows per page.
        let mut h = HeapTable::new(TableId(0), 100);
        for i in 0..n {
            h.append(vec![Value::Int(i), Value::Int(i % 3)].into_boxed_slice());
        }
        h
    }

    #[test]
    fn full_heap_scan_charges_every_page_once() {
        let h = heap(100);
        let mut s = HeapScanState::new();
        let mut io = IoStats::new();
        let mut rows = Vec::new();
        loop {
            let b = s.next_batch(&h, 7, &mut io);
            if b.is_empty() {
                break;
            }
            rows.extend(b);
        }
        assert!(s.exhausted(&h));
        assert_eq!(rows.len(), 100);
        assert_eq!(io.sequential_pages, h.page_count());
        assert_eq!(io.random_pages, 0);
        assert_eq!(io.rows_read, 100);
    }

    #[test]
    fn abandoned_heap_scan_pays_only_pages_read() {
        let h = heap(100); // 3 pages
        let mut s = HeapScanState::new();
        let mut io = IoStats::new();
        let b = s.next_batch(&h, 10, &mut io);
        assert_eq!(b.len(), 10);
        assert_eq!(io.sequential_pages, 1);
        assert!(io.sequential_pages < h.page_count());
    }

    #[test]
    fn empty_heap_scan_is_free() {
        let h = heap(0);
        let mut s = HeapScanState::new();
        let mut io = IoStats::new();
        assert!(s.next_batch(&h, 8, &mut io).is_empty());
        assert_eq!(io.sequential_pages, 0);
        assert_eq!(io.rows_read, 0);
    }

    #[test]
    fn index_scan_delivers_key_order_and_reverse() {
        let mut h = HeapTable::new(TableId(0), 100);
        for i in [5i64, 1, 3, 2, 4] {
            h.append(vec![Value::Int(i), Value::Int(0)].into_boxed_slice());
        }
        let ix = OrderedIndex::build(&h, &[0], &[Direction::Asc]);
        let mut io = IoStats::new();
        let mut s = IndexScanState::open(&ix, None, None, false);
        let mut keys = Vec::new();
        loop {
            let b = s.next_batch(&ix, &h, 2, &mut io);
            if b.is_empty() {
                break;
            }
            keys.extend(b.iter().map(|r| r[0].as_int().unwrap()));
        }
        assert_eq!(keys, vec![1, 2, 3, 4, 5]);
        assert!(s.exhausted());

        let mut rio = IoStats::new();
        let mut s = IndexScanState::open(&ix, None, None, true);
        let b = s.next_batch(&ix, &h, 10, &mut rio);
        let keys: Vec<i64> = b.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(keys, vec![5, 4, 3, 2, 1]);
    }

    #[test]
    fn index_scan_range_bounds() {
        let mut h = HeapTable::new(TableId(0), 100);
        for i in 0..10i64 {
            h.append(vec![Value::Int(i), Value::Int(0)].into_boxed_slice());
        }
        let ix = OrderedIndex::build(&h, &[0], &[Direction::Asc]);
        let mut io = IoStats::new();
        let mut s = IndexScanState::open(&ix, Some(&Value::Int(3)), Some(&Value::Int(6)), false);
        let b = s.next_batch(&ix, &h, 100, &mut io);
        let keys: Vec<i64> = b.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(keys, vec![3, 4, 5, 6]);
    }

    #[test]
    fn index_scan_charges_leaves_incrementally() {
        let mut h = HeapTable::new(TableId(0), 100);
        for i in 0..1000i64 {
            h.append(vec![Value::Int(i), Value::Int(0)].into_boxed_slice());
        }
        let ix = OrderedIndex::build(&h, &[0], &[Direction::Asc]);
        assert_eq!(ix.leaf_pages(), 4);

        // Consuming only the first batch touches one leaf.
        let mut io = IoStats::new();
        let mut s = IndexScanState::open(&ix, None, None, false);
        s.next_batch(&ix, &h, 100, &mut io);
        assert_eq!(io.index_pages, 1);

        // Run to completion: exactly leaf_pages() leaves.
        let mut io = IoStats::new();
        let mut s = IndexScanState::open(&ix, None, None, false);
        while !s.next_batch(&ix, &h, 100, &mut io).is_empty() {}
        assert_eq!(io.index_pages, ix.leaf_pages());
    }

    #[test]
    fn partition_bounds_cover_disjointly_and_align() {
        for len in [0usize, 1, 7, 100, 1000, 1024] {
            for parts in [1usize, 2, 3, 4, 7] {
                for align in [1usize, 8, 256] {
                    let mut next = 0usize;
                    for part in 0..parts {
                        let (lo, hi) = partition_bounds((0, len), part, parts, align);
                        assert_eq!(lo, next, "gap/overlap at {len}/{parts}/{align}/{part}");
                        assert!(lo <= hi);
                        if part + 1 < parts && hi < len {
                            assert_eq!(hi % align, 0, "unaligned cut {hi}");
                        }
                        next = hi;
                    }
                    assert_eq!(next, len, "range not covered");
                }
            }
        }
        // Non-zero base: interior cuts align on absolute positions.
        let (lo, hi) = partition_bounds((10, 522), 0, 2, 256);
        assert_eq!(lo, 10);
        assert_eq!(hi, 512);
        assert_eq!(partition_bounds((10, 522), 1, 2, 256), (512, 522));
    }

    #[test]
    fn partitioned_heap_scan_equals_serial_rows_and_pages() {
        let h = heap(1000); // 40 rows/page => 25 pages
        for parts in [1usize, 2, 3, 4] {
            let mut io = IoStats::new();
            let mut rows = Vec::new();
            for part in 0..parts {
                let mut s = HeapScanState::partition(&h, part, parts);
                loop {
                    let b = s.next_batch(&h, 33, &mut io);
                    if b.is_empty() {
                        break;
                    }
                    rows.extend(b);
                }
                assert!(s.exhausted(&h));
            }
            let keys: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
            assert_eq!(keys, (0..1000).collect::<Vec<i64>>(), "parts={parts}");
            // Page-aligned partitions charge exactly the serial total.
            assert_eq!(io.sequential_pages, h.page_count(), "parts={parts}");
            assert_eq!(io.random_pages, 0);
            assert_eq!(io.rows_read, 1000);
        }
    }

    #[test]
    fn partitioned_index_scan_covers_rows_and_charges_leaves_once() {
        let mut h = HeapTable::new(TableId(0), 100);
        for i in 0..1000i64 {
            h.append(vec![Value::Int((i * 37) % 1000), Value::Int(0)].into_boxed_slice());
        }
        let ix = OrderedIndex::build(&h, &[0], &[Direction::Asc]);
        for parts in [1usize, 2, 4] {
            let mut io = IoStats::new();
            let mut keys = Vec::new();
            for part in 0..parts {
                let mut s = IndexScanState::open_partition(&ix, None, None, false, part, parts);
                loop {
                    let b = s.next_batch(&ix, &h, 57, &mut io);
                    if b.is_empty() {
                        break;
                    }
                    keys.extend(b.iter().map(|r| r[0].as_int().unwrap()));
                }
            }
            assert_eq!(keys, (0..1000).collect::<Vec<i64>>(), "parts={parts}");
            // Leaf-aligned cuts: every leaf is charged by exactly one
            // partition, so the total matches the serial scan.
            assert_eq!(io.index_pages, ix.leaf_pages(), "parts={parts}");
            assert_eq!(io.rows_read, 1000);
        }
    }

    #[test]
    fn partitioned_reverse_index_scan_in_reverse_partition_order() {
        let mut h = HeapTable::new(TableId(0), 100);
        for i in 0..500i64 {
            h.append(vec![Value::Int(i), Value::Int(0)].into_boxed_slice());
        }
        let ix = OrderedIndex::build(&h, &[0], &[Direction::Asc]);
        let parts = 3;
        let mut io = IoStats::new();
        let mut keys = Vec::new();
        // Reverse emission: high key-order partition first, each reversed.
        for part in (0..parts).rev() {
            let mut s = IndexScanState::open_partition(&ix, None, None, true, part, parts);
            loop {
                let b = s.next_batch(&ix, &h, 64, &mut io);
                if b.is_empty() {
                    break;
                }
                keys.extend(b.iter().map(|r| r[0].as_int().unwrap()));
            }
        }
        assert_eq!(keys, (0..500).rev().collect::<Vec<i64>>());
    }

    #[test]
    fn partitioned_range_scan_respects_bounds() {
        let mut h = HeapTable::new(TableId(0), 100);
        for i in 0..1000i64 {
            h.append(vec![Value::Int(i), Value::Int(0)].into_boxed_slice());
        }
        let ix = OrderedIndex::build(&h, &[0], &[Direction::Asc]);
        let mut io = IoStats::new();
        let mut keys = Vec::new();
        for part in 0..4 {
            let mut s = IndexScanState::open_partition(
                &ix,
                Some(&Value::Int(100)),
                Some(&Value::Int(899)),
                false,
                part,
                4,
            );
            loop {
                let b = s.next_batch(&ix, &h, 128, &mut io);
                if b.is_empty() {
                    break;
                }
                keys.extend(b.iter().map(|r| r[0].as_int().unwrap()));
            }
        }
        assert_eq!(keys, (100..900).collect::<Vec<i64>>());
    }

    #[test]
    fn reverse_index_scan_stays_lazy_and_bounded() {
        let mut h = HeapTable::new(TableId(0), 100);
        for i in 0..1000i64 {
            h.append(vec![Value::Int(i), Value::Int(0)].into_boxed_slice());
        }
        let ix = OrderedIndex::build(&h, &[0], &[Direction::Asc]);

        // Pulling 10 rows in reverse touches one leaf (the last) and only
        // the heap pages behind those 10 rows.
        let mut io = IoStats::new();
        let mut s = IndexScanState::open(&ix, None, None, true);
        let b = s.next_batch(&ix, &h, 10, &mut io);
        let keys: Vec<i64> = b.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(keys, (990..1000).rev().collect::<Vec<i64>>());
        assert_eq!(io.index_pages, 1);
        assert_eq!(io.rows_read, 10);
        assert!(!s.exhausted());
    }
}
