//! Heap tables: rows packed into simulated fixed-size pages.

use crate::io::PAGE_SIZE;
use fto_common::{Row, TableId};

/// An in-memory heap table with logical page geometry.
#[derive(Debug)]
pub struct HeapTable {
    table: TableId,
    rows: Vec<Row>,
    rows_per_page: u64,
}

impl HeapTable {
    /// Creates a heap for `table` whose declared row width is
    /// `row_width` bytes; geometry is derived from [`PAGE_SIZE`].
    pub fn new(table: TableId, row_width: usize) -> HeapTable {
        let rows_per_page = (PAGE_SIZE / row_width.max(1)).max(1) as u64;
        HeapTable {
            table,
            rows: Vec::new(),
            rows_per_page,
        }
    }

    /// The table this heap stores.
    pub fn table(&self) -> TableId {
        self.table
    }

    /// Appends a row, returning its row id.
    pub fn append(&mut self, row: Row) -> usize {
        self.rows.push(row);
        self.rows.len() - 1
    }

    /// Bulk-replaces the heap contents (used when clustering).
    pub fn replace_rows(&mut self, rows: Vec<Row>) {
        self.rows = rows;
    }

    /// Number of rows.
    pub fn row_count(&self) -> u64 {
        self.rows.len() as u64
    }

    /// Number of logical pages occupied (at least one).
    pub fn page_count(&self) -> u64 {
        self.row_count().div_ceil(self.rows_per_page).max(1)
    }

    /// Rows stored per logical page.
    pub fn rows_per_page(&self) -> u64 {
        self.rows_per_page
    }

    /// The logical page holding row `rid`.
    pub fn page_of(&self, rid: usize) -> u64 {
        rid as u64 / self.rows_per_page
    }

    /// Fetches a row by id.
    pub fn row(&self, rid: usize) -> &Row {
        &self.rows[rid]
    }

    /// All rows, in heap order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fto_common::Value;

    fn int_row(v: i64) -> Row {
        vec![Value::Int(v)].into_boxed_slice()
    }

    #[test]
    fn geometry() {
        // 100-byte rows: 40 rows per 4096-byte page.
        let mut h = HeapTable::new(TableId(0), 100);
        assert_eq!(h.rows_per_page(), 40);
        for i in 0..100 {
            h.append(int_row(i));
        }
        assert_eq!(h.row_count(), 100);
        assert_eq!(h.page_count(), 3);
        assert_eq!(h.page_of(0), 0);
        assert_eq!(h.page_of(39), 0);
        assert_eq!(h.page_of(40), 1);
        assert_eq!(h.page_of(99), 2);
    }

    #[test]
    fn empty_heap_has_one_page() {
        let h = HeapTable::new(TableId(0), 8);
        assert_eq!(h.page_count(), 1);
        assert_eq!(h.row_count(), 0);
    }

    #[test]
    fn wide_rows_one_per_page() {
        let h = HeapTable::new(TableId(0), 10_000);
        assert_eq!(h.rows_per_page(), 1);
    }

    #[test]
    fn append_and_fetch() {
        let mut h = HeapTable::new(TableId(2), 8);
        let rid = h.append(int_row(7));
        assert_eq!(rid, 0);
        assert_eq!(h.row(rid)[0], Value::Int(7));
        assert_eq!(h.table(), TableId(2));
    }

    #[test]
    fn replace_rows() {
        let mut h = HeapTable::new(TableId(0), 8);
        h.append(int_row(2));
        h.append(int_row(1));
        h.replace_rows(vec![int_row(1), int_row(2)]);
        assert_eq!(h.row(0)[0], Value::Int(1));
        assert_eq!(h.rows().len(), 2);
    }
}
