//! Spill files and the bounded buffer pool behind the executor's memory
//! budget.
//!
//! When a query runs with a memory budget, pipeline breakers (sort,
//! hash group-by, hash-join build) write overflow data through a
//! [`SpillFile`] — an append-only byte stream charged against
//! [`IoStats`] at page granularity exactly like every other access path
//! in the simulated I/O model. Rows cross the boundary through an exact
//! byte codec ([`write_row`] / [`read_row`]) that round-trips every
//! [`Value`] bit for bit, NaN payloads and `-0.0` included, so a spilled
//! sort stays bit-identical to its in-memory twin.
//!
//! The same budget also bounds the page cache: [`BufferPool`] is a
//! clock-eviction pool over `(tag, page)` keys. When a pool is active,
//! scan cursors route page touches through it — a resident page is a
//! free *hit*, a miss pays the usual sequential/random charge — so the
//! simulated charges become actual hit/miss behavior under memory
//! pressure. Without a budget there is no pool and charging is
//! bit-identical to the pre-pool engine.

use crate::io::{IoStats, PAGE_SIZE};
use fto_common::{Row, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// An append-only spill stream, charged per 4 KiB page.
///
/// The file is a simulated disk file: an in-memory byte vector whose
/// *accounting* follows the same page discipline as heap and index
/// access. Appends charge [`IoStats::spill_pages_written`] once per page
/// the stream grows into; reads through a [`SpillCursor`] charge
/// [`IoStats::spill_pages_read`] once per page entered. Both directions
/// are strictly sequential, which is why spill pages are priced at the
/// sequential rate in [`IoStats::weighted_page_cost`].
#[derive(Debug, Default)]
pub struct SpillFile {
    bytes: Vec<u8>,
    charged_pages: u64,
}

impl SpillFile {
    /// An empty spill file.
    pub fn new() -> SpillFile {
        SpillFile::default()
    }

    /// Total bytes written so far (the next append offset).
    pub fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Appends raw bytes, returning the offset they start at and charging
    /// one `spill_pages_written` per page the file newly occupies.
    pub fn append(&mut self, data: &[u8], io: &mut IoStats) -> u64 {
        let offset = self.bytes.len() as u64;
        self.bytes.extend_from_slice(data);
        let pages = (self.bytes.len() as u64).div_ceil(PAGE_SIZE as u64);
        io.spill_pages_written += pages - self.charged_pages;
        self.charged_pages = pages;
        offset
    }

    /// Appends one length-framed record (`u32` LE length, then the
    /// payload), returning its start offset. Read back with
    /// [`SpillCursor::read_record`].
    pub fn append_record(&mut self, payload: &[u8], io: &mut IoStats) -> u64 {
        let offset = self.append(&(payload.len() as u32).to_le_bytes(), io);
        self.append(payload, io);
        offset
    }

    /// The raw bytes at `[offset, offset + len)`. Callers that want page
    /// charging go through a [`SpillCursor`] instead; this is the
    /// zero-charge accessor for data the caller has already paid for
    /// (e.g. a re-read within the same logical pass).
    pub fn slice(&self, offset: u64, len: usize) -> &[u8] {
        &self.bytes[offset as usize..offset as usize + len]
    }
}

/// A forward read cursor over one `[start, end)` extent of a
/// [`SpillFile`], charging `spill_pages_read` once per page entered.
///
/// The cursor holds positions, not borrows, so several cursors can
/// interleave reads of the same file (the K-way merge does exactly
/// that) and the file can keep growing behind them.
#[derive(Clone, Copy, Debug)]
pub struct SpillCursor {
    pos: u64,
    end: u64,
    last_page: Option<u64>,
}

impl SpillCursor {
    /// A cursor over `[start, end)`.
    pub fn new(start: u64, end: u64) -> SpillCursor {
        SpillCursor {
            pos: start,
            end,
            last_page: None,
        }
    }

    /// True once the extent is fully consumed.
    pub fn finished(&self) -> bool {
        self.pos >= self.end
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> u64 {
        self.end.saturating_sub(self.pos)
    }

    /// Current absolute offset.
    pub fn position(&self) -> u64 {
        self.pos
    }

    fn charge_span(&mut self, len: usize, io: &mut IoStats) {
        if len == 0 {
            return;
        }
        let first = self.pos / PAGE_SIZE as u64;
        let last = (self.pos + len as u64 - 1) / PAGE_SIZE as u64;
        let from = match self.last_page {
            Some(p) if p >= first => p + 1,
            _ => first,
        };
        if last >= from {
            io.spill_pages_read += last - from + 1;
        }
        self.last_page = Some(self.last_page.map_or(last, |p| p.max(last)));
    }

    /// Reads exactly `len` bytes into an owned buffer.
    ///
    /// Panics if the extent holds fewer bytes — spill files are written
    /// and read by the same operator, so a short read is a framing bug.
    pub fn read_exact(&mut self, file: &SpillFile, len: usize, io: &mut IoStats) -> Vec<u8> {
        assert!(self.pos + len as u64 <= self.end, "spill cursor overrun");
        self.charge_span(len, io);
        let out = file.slice(self.pos, len).to_vec();
        self.pos += len as u64;
        out
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self, file: &SpillFile, io: &mut IoStats) -> u32 {
        let b = self.read_exact(file, 4, io);
        u32::from_le_bytes(b.try_into().expect("4 bytes"))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self, file: &SpillFile, io: &mut IoStats) -> u64 {
        let b = self.read_exact(file, 8, io);
        u64::from_le_bytes(b.try_into().expect("8 bytes"))
    }

    /// Reads one record written by [`SpillFile::append_record`], or
    /// `None` when the extent is exhausted.
    pub fn read_record(&mut self, file: &SpillFile, io: &mut IoStats) -> Option<Vec<u8>> {
        if self.finished() {
            return None;
        }
        let len = self.read_u32(file, io) as usize;
        Some(self.read_exact(file, len, io))
    }
}

// Value codec tags. The format is internal to spill files (never
// persisted across processes), so it favors exactness and simplicity
// over compactness.
const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_DOUBLE: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_DATE: u8 = 4;
const TAG_BOOL: u8 = 5;

/// Appends the exact byte encoding of one value. Doubles are stored as
/// raw IEEE-754 bits, so NaN payloads and `-0.0` survive the round trip
/// bit for bit — a requirement for spilled sorts to stay bit-identical
/// to in-memory ones.
pub fn write_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Double(d) => {
            out.push(TAG_DOUBLE);
            out.extend_from_slice(&d.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Date(d) => {
            out.push(TAG_DATE);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
    }
}

/// Decodes one value from `buf` starting at `*pos`, advancing `*pos`.
///
/// Panics on a malformed buffer; spill data never leaves the process, so
/// corruption here is an engine bug, not an input error.
pub fn read_value(buf: &[u8], pos: &mut usize) -> Value {
    let tag = buf[*pos];
    *pos += 1;
    match tag {
        TAG_NULL => Value::Null,
        TAG_INT => {
            let v = i64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("8 bytes"));
            *pos += 8;
            Value::Int(v)
        }
        TAG_DOUBLE => {
            let bits = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("8 bytes"));
            *pos += 8;
            Value::Double(f64::from_bits(bits))
        }
        TAG_STR => {
            let len = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().expect("4 bytes")) as usize;
            *pos += 4;
            let s = std::str::from_utf8(&buf[*pos..*pos + len]).expect("spilled UTF-8");
            *pos += len;
            Value::Str(Arc::from(s))
        }
        TAG_DATE => {
            let v = i32::from_le_bytes(buf[*pos..*pos + 4].try_into().expect("4 bytes"));
            *pos += 4;
            Value::Date(v)
        }
        TAG_BOOL => {
            let v = buf[*pos] != 0;
            *pos += 1;
            Value::Bool(v)
        }
        other => panic!("corrupt spill value tag {other}"),
    }
}

/// Appends the byte encoding of one row: `u16` LE arity, then each value
/// via [`write_value`].
pub fn write_row(row: &[Value], out: &mut Vec<u8>) {
    out.extend_from_slice(&(row.len() as u16).to_le_bytes());
    for v in row {
        write_value(v, out);
    }
}

/// Decodes one row written by [`write_row`], advancing `*pos`.
pub fn read_row(buf: &[u8], pos: &mut usize) -> Row {
    let arity = u16::from_le_bytes(buf[*pos..*pos + 2].try_into().expect("2 bytes")) as usize;
    *pos += 2;
    (0..arity)
        .map(|_| read_value(buf, pos))
        .collect::<Vec<_>>()
        .into_boxed_slice()
}

/// A bounded page cache with clock (second-chance) eviction.
///
/// Frames are keyed by `(tag, page)` — the tag namespaces page numbers
/// per table or index so distinct objects never collide. The pool tracks
/// *residency only* (which pages would be in memory), not page contents:
/// the simulated I/O model needs hit/miss behavior, not a second copy of
/// the data. A touch of a resident page sets its reference bit and
/// reports a hit; a miss claims a frame, evicting the first
/// unreferenced frame the clock hand sweeps past.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<(u64, u64), usize>,
    hand: usize,
}

#[derive(Debug)]
struct Frame {
    key: (u64, u64),
    referenced: bool,
}

impl BufferPool {
    /// A pool sized to `budget_bytes` of page frames (at least one).
    pub fn new(budget_bytes: usize) -> BufferPool {
        BufferPool::with_capacity_pages((budget_bytes / PAGE_SIZE).max(1))
    }

    /// A pool of exactly `pages` frames (at least one).
    pub fn with_capacity_pages(pages: usize) -> BufferPool {
        let capacity = pages.max(1);
        BufferPool {
            capacity,
            frames: Vec::new(),
            map: HashMap::new(),
            hand: 0,
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident pages.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// Touches `(tag, page)`: returns `true` on a hit (page resident),
    /// `false` on a miss (page faulted in, possibly evicting another).
    pub fn touch(&mut self, tag: u64, page: u64) -> bool {
        let key = (tag, page);
        if let Some(&slot) = self.map.get(&key) {
            self.frames[slot].referenced = true;
            return true;
        }
        if self.frames.len() < self.capacity {
            self.map.insert(key, self.frames.len());
            self.frames.push(Frame {
                key,
                referenced: true,
            });
            return false;
        }
        // Clock sweep: clear reference bits until an unreferenced frame
        // turns up. Terminates within two revolutions.
        loop {
            let f = &mut self.frames[self.hand];
            if f.referenced {
                f.referenced = false;
                self.hand = (self.hand + 1) % self.capacity;
            } else {
                self.map.remove(&f.key);
                f.key = key;
                f.referenced = true;
                self.map.insert(key, self.hand);
                self.hand = (self.hand + 1) % self.capacity;
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_charges_pages_incrementally() {
        let mut f = SpillFile::new();
        let mut io = IoStats::new();
        f.append(&[0u8; 100], &mut io);
        assert_eq!(io.spill_pages_written, 1);
        // Staying inside the first page is free.
        f.append(&[0u8; 100], &mut io);
        assert_eq!(io.spill_pages_written, 1);
        // Crossing into pages 2 and 3 charges two more.
        f.append(&[0u8; 2 * PAGE_SIZE], &mut io);
        assert_eq!(io.spill_pages_written, 3);
        assert_eq!(f.len(), 200 + 2 * PAGE_SIZE as u64);
    }

    #[test]
    fn cursor_charges_each_page_once() {
        let mut f = SpillFile::new();
        let mut io = IoStats::new();
        let data: Vec<u8> = (0..PAGE_SIZE * 2 + 10).map(|i| i as u8).collect();
        f.append(&data, &mut io);
        let mut c = SpillCursor::new(0, f.len());
        let mut rio = IoStats::new();
        let mut got = Vec::new();
        while !c.finished() {
            let n = c.remaining().min(777) as usize;
            got.extend(c.read_exact(&f, n, &mut rio));
        }
        assert_eq!(got, data);
        assert_eq!(rio.spill_pages_read, 3);
    }

    #[test]
    fn records_round_trip() {
        let mut f = SpillFile::new();
        let mut io = IoStats::new();
        f.append_record(b"alpha", &mut io);
        f.append_record(b"", &mut io);
        f.append_record(b"gamma", &mut io);
        let mut c = SpillCursor::new(0, f.len());
        assert_eq!(c.read_record(&f, &mut io).as_deref(), Some(&b"alpha"[..]));
        assert_eq!(c.read_record(&f, &mut io).as_deref(), Some(&b""[..]));
        assert_eq!(c.read_record(&f, &mut io).as_deref(), Some(&b"gamma"[..]));
        assert_eq!(c.read_record(&f, &mut io), None);
    }

    #[test]
    fn value_codec_is_bit_exact() {
        let vals = vec![
            Value::Null,
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Double(-0.0),
            Value::Double(f64::from_bits(0x7FF8_0000_DEAD_BEEF)), // NaN payload
            Value::Double(f64::NEG_INFINITY),
            Value::str(""),
            Value::str("sp\0ill\u{1F980}"),
            Value::Date(i32::MIN),
            Value::Bool(true),
            Value::Bool(false),
        ];
        let mut buf = Vec::new();
        write_row(&vals, &mut buf);
        let mut pos = 0;
        let back = read_row(&buf, &mut pos);
        assert_eq!(pos, buf.len());
        assert_eq!(back.len(), vals.len());
        for (a, b) in back.iter().zip(&vals) {
            match (a, b) {
                (Value::Double(x), Value::Double(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                _ => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn pool_hits_and_clock_eviction() {
        let mut p = BufferPool::with_capacity_pages(2);
        assert!(!p.touch(0, 1)); // miss, fault in
        assert!(!p.touch(0, 2)); // miss
        assert!(p.touch(0, 1)); // hit
        assert_eq!(p.resident(), 2);
        // Pool full: faulting page 3 evicts something; the clock clears
        // reference bits first, so both residents survive one sweep each.
        assert!(!p.touch(0, 3));
        assert_eq!(p.resident(), 2);
        // Distinct tags never collide even on equal page numbers.
        let mut q = BufferPool::with_capacity_pages(4);
        assert!(!q.touch(1, 7));
        assert!(!q.touch(2, 7));
        assert!(q.touch(1, 7));
    }

    #[test]
    fn tiny_budget_still_gets_one_frame() {
        let mut p = BufferPool::new(10); // well under one page
        assert_eq!(p.capacity(), 1);
        assert!(!p.touch(0, 1));
        assert!(p.touch(0, 1));
        assert!(!p.touch(0, 2)); // evicts page 1
        assert!(!p.touch(0, 1));
    }
}
