//! Ordered indexes: sorted key → row-id structures supporting full ordered
//! scans, range scans, and equality probes.
//!
//! The structure is a sorted array rather than a node-linked B-tree — the
//! access characteristics the paper's techniques care about (order
//! provision, probe clustering, leaf-page accounting) are identical, and
//! DESIGN.md records the substitution.

use crate::heap::HeapTable;
use fto_common::{sortkey, Direction, Value};
use std::cmp::Ordering;

/// Entries per simulated index leaf page (keys are small).
pub(crate) const ENTRIES_PER_LEAF: u64 = 256;

/// An ordered index over a heap table.
#[derive(Debug)]
pub struct OrderedIndex {
    /// (key values, row id), sorted by key (with per-part directions),
    /// ties broken by row id for determinism.
    entries: Vec<(Vec<Value>, usize)>,
    /// Normalized binary key per entry (directions baked in at build
    /// time), parallel to `entries`. Encoded probes binary-search these
    /// with plain byte comparisons — no per-descent `Value` dispatch.
    enc: Vec<Vec<u8>>,
    directions: Vec<Direction>,
}

impl OrderedIndex {
    /// Builds the index over `heap`, extracting key parts with
    /// `key_ordinals` and ordering each part by the matching direction.
    /// Entries sort by their normalized binary keys (row-id tiebreak) —
    /// the same order the `Value` comparator defines, partitioned
    /// byte-wise.
    pub fn build(
        heap: &HeapTable,
        key_ordinals: &[usize],
        directions: &[Direction],
    ) -> OrderedIndex {
        assert_eq!(key_ordinals.len(), directions.len());
        let dir_keys: Vec<(usize, Direction)> = directions
            .iter()
            .enumerate()
            .map(|(i, &d)| (i, d))
            .collect();
        let mut decorated: Vec<(Vec<u8>, Vec<Value>, usize)> = heap
            .rows()
            .iter()
            .enumerate()
            .map(|(rid, row)| {
                let key: Vec<Value> = key_ordinals.iter().map(|&o| row[o].clone()).collect();
                let enc = sortkey::encode_key(&key, &dir_keys);
                (enc, key, rid)
            })
            .collect();
        decorated.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.2.cmp(&b.2)));
        let mut entries = Vec::with_capacity(decorated.len());
        let mut enc = Vec::with_capacity(decorated.len());
        for (e, key, rid) in decorated {
            enc.push(e);
            entries.push((key, rid));
        }
        OrderedIndex {
            entries,
            enc,
            directions: directions.to_vec(),
        }
    }

    /// Number of entries (one per heap row).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of simulated leaf pages.
    pub fn leaf_pages(&self) -> u64 {
        (self.entries.len() as u64)
            .div_ceil(ENTRIES_PER_LEAF)
            .max(1)
    }

    /// Full scan in index order: yields `(key, row id)`.
    pub fn scan(&self) -> impl Iterator<Item = (&[Value], usize)> + '_ {
        self.entries.iter().map(|(k, r)| (k.as_slice(), *r))
    }

    /// Equality probe on a prefix of the key: all row ids whose leading
    /// key parts equal `prefix`, in index order.
    pub fn probe(&self, prefix: &[Value]) -> &[(Vec<Value>, usize)] {
        debug_assert!(prefix.len() <= self.directions.len());
        let lo = self.entries.partition_point(|(k, _)| {
            compare_prefix(k, prefix, &self.directions) == Ordering::Less
        });
        let hi = self.entries.partition_point(|(k, _)| {
            compare_prefix(k, prefix, &self.directions) != Ordering::Greater
        });
        &self.entries[lo..hi]
    }

    /// Encodes a probe prefix into its normalized binary key under this
    /// index's directions — the input [`probe_encoded`](Self::probe_encoded)
    /// expects. Callers probing many rows encode once per probe and skip
    /// the per-comparison `Value` dispatch of [`probe`](Self::probe).
    pub fn encode_probe(&self, prefix: &[Value]) -> Vec<u8> {
        debug_assert!(prefix.len() <= self.directions.len());
        let dir_keys: Vec<(usize, Direction)> = self
            .directions
            .iter()
            .take(prefix.len())
            .enumerate()
            .map(|(i, &d)| (i, d))
            .collect();
        sortkey::encode_key(prefix, &dir_keys)
    }

    /// Equality probe on an encoded key prefix (see
    /// [`encode_probe`](Self::encode_probe)): byte-compares against the
    /// stored normalized keys. Returns exactly what [`probe`](Self::probe)
    /// returns for the same prefix — column encodings are prefix-free, so
    /// an entry matches iff its encoding starts with the probe bytes.
    pub fn probe_encoded(&self, probe: &[u8]) -> &[(Vec<Value>, usize)] {
        let cmp = |entry: &[u8]| -> Ordering {
            let n = probe.len().min(entry.len());
            match entry[..n].cmp(&probe[..n]) {
                // Prefix bytes equal: the entry matches when it is at
                // least as long as the probe (fewer probe columns than
                // key columns). A shorter entry cannot happen for valid
                // probes; order it Less for totality.
                Ordering::Equal if entry.len() >= probe.len() => Ordering::Equal,
                Ordering::Equal => Ordering::Less,
                ord => ord,
            }
        };
        let lo = self.enc.partition_point(|e| cmp(e) == Ordering::Less);
        let hi = self.enc.partition_point(|e| cmp(e) != Ordering::Greater);
        &self.entries[lo..hi]
    }

    /// Range scan on the leading key part: entries whose first key part is
    /// within `[lo, hi]` (either bound optional), in index order. Only
    /// meaningful when the leading part is ascending.
    pub fn range(
        &self,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> impl Iterator<Item = (&[Value], usize)> + '_ {
        let (start, end) = self.range_positions(lo, hi);
        self.entries[start..end]
            .iter()
            .map(|(k, r)| (k.as_slice(), *r))
    }

    /// The half-open entry-position interval `[start, end)` matched by a
    /// leading-key range — the positions [`range`](OrderedIndex::range)
    /// iterates. Lets scan cursors hold a position pair instead of
    /// materializing row ids, so resolving entries stays O(1) per row.
    pub fn range_positions(&self, lo: Option<&Value>, hi: Option<&Value>) -> (usize, usize) {
        let start = match lo {
            Some(v) => self
                .entries
                .partition_point(|(k, _)| k[0].total_cmp(v) == Ordering::Less),
            None => 0,
        };
        let end = match hi {
            Some(v) => self
                .entries
                .partition_point(|(k, _)| k[0].total_cmp(v) != Ordering::Greater),
            None => self.entries.len(),
        };
        (start, end.max(start))
    }

    /// Row id stored at entry position `pos` (index order).
    pub(crate) fn rid_at(&self, pos: usize) -> usize {
        self.entries[pos].1
    }
}

fn compare_prefix(key: &[Value], prefix: &[Value], dirs: &[Direction]) -> Ordering {
    for (i, p) in prefix.iter().enumerate() {
        let ord = dirs[i].apply(key[i].total_cmp(p));
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use fto_common::TableId;

    fn heap(rows: &[(i64, i64)]) -> HeapTable {
        let mut h = HeapTable::new(TableId(0), 16);
        for &(a, b) in rows {
            h.append(vec![Value::Int(a), Value::Int(b)].into_boxed_slice());
        }
        h
    }

    #[test]
    fn scan_in_key_order() {
        let h = heap(&[(3, 0), (1, 1), (2, 2)]);
        let ix = OrderedIndex::build(&h, &[0], &[Direction::Asc]);
        let keys: Vec<i64> = ix.scan().map(|(k, _)| k[0].as_int().unwrap()).collect();
        assert_eq!(keys, vec![1, 2, 3]);
        assert_eq!(ix.len(), 3);
        assert!(!ix.is_empty());
    }

    #[test]
    fn descending_index() {
        let h = heap(&[(3, 0), (1, 1), (2, 2)]);
        let ix = OrderedIndex::build(&h, &[0], &[Direction::Desc]);
        let keys: Vec<i64> = ix.scan().map(|(k, _)| k[0].as_int().unwrap()).collect();
        assert_eq!(keys, vec![3, 2, 1]);
    }

    #[test]
    fn composite_key_order() {
        let h = heap(&[(1, 2), (1, 1), (0, 9)]);
        let ix = OrderedIndex::build(&h, &[0, 1], &[Direction::Asc, Direction::Asc]);
        let keys: Vec<(i64, i64)> = ix
            .scan()
            .map(|(k, _)| (k[0].as_int().unwrap(), k[1].as_int().unwrap()))
            .collect();
        assert_eq!(keys, vec![(0, 9), (1, 1), (1, 2)]);
    }

    #[test]
    fn probe_full_key() {
        let h = heap(&[(1, 0), (2, 1), (2, 2), (3, 3)]);
        let ix = OrderedIndex::build(&h, &[0], &[Direction::Asc]);
        let hits = ix.probe(&[Value::Int(2)]);
        let rids: Vec<usize> = hits.iter().map(|(_, r)| *r).collect();
        assert_eq!(rids, vec![1, 2]);
        assert!(ix.probe(&[Value::Int(9)]).is_empty());
    }

    #[test]
    fn probe_prefix_of_composite_key() {
        let h = heap(&[(1, 5), (1, 3), (2, 1)]);
        let ix = OrderedIndex::build(&h, &[0, 1], &[Direction::Asc, Direction::Asc]);
        let hits = ix.probe(&[Value::Int(1)]);
        assert_eq!(hits.len(), 2);
        // Hits come back in full index order: (1,3) before (1,5).
        assert_eq!(hits[0].0[1], Value::Int(3));
    }

    #[test]
    fn probe_on_descending_index() {
        let h = heap(&[(1, 0), (2, 1), (2, 2)]);
        let ix = OrderedIndex::build(&h, &[0], &[Direction::Desc]);
        let hits = ix.probe(&[Value::Int(2)]);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn range_scan() {
        let h = heap(&[(5, 0), (1, 1), (3, 2), (8, 3)]);
        let ix = OrderedIndex::build(&h, &[0], &[Direction::Asc]);
        let keys: Vec<i64> = ix
            .range(Some(&Value::Int(2)), Some(&Value::Int(6)))
            .map(|(k, _)| k[0].as_int().unwrap())
            .collect();
        assert_eq!(keys, vec![3, 5]);
        let all: Vec<i64> = ix
            .range(None, None)
            .map(|(k, _)| k[0].as_int().unwrap())
            .collect();
        assert_eq!(all, vec![1, 3, 5, 8]);
        let upper: Vec<i64> = ix
            .range(Some(&Value::Int(5)), None)
            .map(|(k, _)| k[0].as_int().unwrap())
            .collect();
        assert_eq!(upper, vec![5, 8]);
    }

    #[test]
    fn leaf_pages() {
        let mut h = HeapTable::new(TableId(0), 16);
        for i in 0..1000 {
            h.append(vec![Value::Int(i), Value::Int(0)].into_boxed_slice());
        }
        let ix = OrderedIndex::build(&h, &[0], &[Direction::Asc]);
        assert_eq!(ix.leaf_pages(), 4); // 1000 / 256 rounded up
        let empty = OrderedIndex::build(&heap(&[]), &[0], &[Direction::Asc]);
        assert_eq!(empty.leaf_pages(), 1);
    }

    #[test]
    fn encoded_probe_matches_value_probe() {
        let h = heap(&[(1, 5), (1, 3), (2, 1), (2, 2), (3, 0)]);
        for dirs in [
            [Direction::Asc, Direction::Asc],
            [Direction::Desc, Direction::Asc],
            [Direction::Desc, Direction::Desc],
        ] {
            let ix = OrderedIndex::build(&h, &[0, 1], &dirs);
            for k in 0..5i64 {
                let prefix = [Value::Int(k)];
                let enc = ix.encode_probe(&prefix);
                assert_eq!(ix.probe_encoded(&enc), ix.probe(&prefix), "{dirs:?} k={k}");
                let full = [Value::Int(k), Value::Int(3)];
                let enc = ix.encode_probe(&full);
                assert_eq!(
                    ix.probe_encoded(&enc),
                    ix.probe(&full),
                    "{dirs:?} full k={k}"
                );
            }
        }
    }

    #[test]
    fn ties_break_by_row_id() {
        let h = heap(&[(1, 9), (1, 8), (1, 7)]);
        let ix = OrderedIndex::build(&h, &[0], &[Direction::Asc]);
        let rids: Vec<usize> = ix.scan().map(|(_, r)| r).collect();
        assert_eq!(rids, vec![0, 1, 2]);
    }
}
