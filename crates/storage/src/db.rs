//! [`Database`]: the catalog plus physical storage for every table.

use crate::heap::HeapTable;
use crate::index::OrderedIndex;
use fto_catalog::{Catalog, TableStats};
use fto_common::{FtoError, IndexId, Result, Row, TableId};
use std::collections::HashMap;

/// A complete in-memory database: schema, heaps, and indexes.
#[derive(Debug)]
pub struct Database {
    catalog: Catalog,
    heaps: HashMap<TableId, HeapTable>,
    indexes: HashMap<IndexId, OrderedIndex>,
}

impl Database {
    /// Wraps a catalog with empty storage.
    pub fn new(catalog: Catalog) -> Database {
        Database {
            catalog,
            heaps: HashMap::new(),
            indexes: HashMap::new(),
        }
    }

    /// The schema.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the schema (for creating tables/indexes before
    /// loading).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Loads rows into a table: clusters them if the table has a clustered
    /// index, builds every declared index, and refreshes statistics.
    pub fn load_table(&mut self, table: TableId, mut rows: Vec<Row>) -> Result<()> {
        let def = self.catalog.table(table)?.clone();
        let mut heap = HeapTable::new(table, def.row_width());

        // Cluster the heap by the clustered index key, if any.
        let clustered = self
            .catalog
            .indexes_for(table)
            .find(|ix| ix.clustered)
            .cloned();
        if let Some(cix) = &clustered {
            let key = cix.key.clone();
            rows.sort_by(|a, b| {
                for &(ord, dir) in &key {
                    let cmp = dir.apply(a[ord].total_cmp(&b[ord]));
                    if cmp != std::cmp::Ordering::Equal {
                        return cmp;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        for row in rows {
            if row.len() != def.arity() {
                return Err(FtoError::Catalog(format!(
                    "row arity {} does not match table '{}' arity {}",
                    row.len(),
                    def.name,
                    def.arity()
                )));
            }
            heap.append(row);
        }

        // Build all indexes.
        let index_defs: Vec<_> = self.catalog.indexes_for(table).cloned().collect();
        for ixdef in index_defs {
            let ordinals: Vec<usize> = ixdef.key.iter().map(|&(o, _)| o).collect();
            let dirs: Vec<_> = ixdef.key.iter().map(|&(_, d)| d).collect();
            let ix = OrderedIndex::build(&heap, &ordinals, &dirs);
            self.indexes.insert(ixdef.id, ix);
        }

        // Refresh statistics (the engine's RUNSTATS).
        let stats = TableStats::from_rows(
            heap.rows().iter().map(|r| r.as_ref()),
            def.arity(),
            heap.rows_per_page(),
        );
        self.catalog.set_stats(table, stats);

        self.heaps.insert(table, heap);
        Ok(())
    }

    /// The heap for a table (must be loaded).
    pub fn heap(&self, table: TableId) -> Result<&HeapTable> {
        self.heaps
            .get(&table)
            .ok_or_else(|| FtoError::Exec(format!("table {table} has no data loaded")))
    }

    /// The physical structure of an index (must be built).
    pub fn index(&self, index: IndexId) -> Result<&OrderedIndex> {
        self.indexes
            .get(&index)
            .ok_or_else(|| FtoError::Exec(format!("index {index} not built")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fto_catalog::{ColumnDef, KeyDef};
    use fto_common::{DataType, Direction, Value};

    fn make_db() -> (Database, TableId) {
        let mut cat = Catalog::new();
        let t = cat
            .create_table(
                "t",
                vec![
                    ColumnDef::new("k", DataType::Int),
                    ColumnDef::new("v", DataType::Int),
                ],
                vec![KeyDef::primary([0])],
            )
            .unwrap();
        (Database::new(cat), t)
    }

    fn row2(a: i64, b: i64) -> Row {
        vec![Value::Int(a), Value::Int(b)].into_boxed_slice()
    }

    #[test]
    fn load_clusters_by_primary_key() {
        let (mut db, t) = make_db();
        db.load_table(t, vec![row2(3, 30), row2(1, 10), row2(2, 20)])
            .unwrap();
        let heap = db.heap(t).unwrap();
        let keys: Vec<i64> = heap.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn load_builds_indexes_and_stats() {
        let (mut db, t) = make_db();
        let ix2 = db
            .catalog_mut()
            .create_index("t_v", t, vec![(1, Direction::Asc)], false, false)
            .unwrap();
        db.load_table(t, vec![row2(1, 30), row2(2, 10)]).unwrap();
        let ix = db.index(ix2).unwrap();
        let vs: Vec<i64> = ix.scan().map(|(k, _)| k[0].as_int().unwrap()).collect();
        assert_eq!(vs, vec![10, 30]);
        let stats = db.catalog().stats(t);
        assert_eq!(stats.row_count, 2);
        assert_eq!(stats.columns[1].ndv, 2);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let (mut db, t) = make_db();
        let bad: Row = vec![Value::Int(1)].into_boxed_slice();
        assert!(db.load_table(t, vec![bad]).is_err());
    }

    #[test]
    fn unloaded_table_errors() {
        let (db, t) = make_db();
        assert!(db.heap(t).is_err());
        assert!(db.index(IndexId(99)).is_err());
    }

    #[test]
    fn reload_replaces_data() {
        let (mut db, t) = make_db();
        db.load_table(t, vec![row2(1, 1)]).unwrap();
        db.load_table(t, vec![row2(5, 5), row2(4, 4)]).unwrap();
        assert_eq!(db.heap(t).unwrap().row_count(), 2);
        assert_eq!(db.catalog().stats(t).row_count, 2);
    }
}
