//! Differential testing of the two execution engines: every query in the
//! workload corpus must produce identical rows, in identical order,
//! through the streaming batched executor and the materializing
//! reference interpreter — under every optimizer configuration and
//! across batch sizes. Plus the I/O property the streaming engine
//! exists for: LIMIT stops paying for pages it never reads.

use fto_bench::corpus::{emp_db, EMP_QUERIES};
use fto_bench::{envknob, Session};
use fto_planner::OptimizerConfig;
use fto_storage::Database;
use fto_tpcd::{build_database, queries, TpcdConfig};

/// Parallel degree to additionally run the whole suite at, from the
/// `FTO_TEST_THREADS` environment variable (CI sets 4). Unset or 1
/// means serial-only; an unparseable value fails the suite rather than
/// silently running serial.
fn env_threads() -> Option<usize> {
    envknob::env_parse::<usize>("FTO_TEST_THREADS")
        .unwrap_or_else(|e| panic!("{e}"))
        .filter(|&p| p > 1)
}

fn all_configs() -> Vec<OptimizerConfig> {
    let mut configs = vec![
        OptimizerConfig::default(),
        OptimizerConfig::disabled(),
        OptimizerConfig::db2_1996(),
        OptimizerConfig::db2_1996_disabled(),
        OptimizerConfig::default().with_sort_ahead(false),
        OptimizerConfig::default()
            .with_hash_join(false)
            .with_nested_loop(false),
        // Legacy Value-comparator sort paths (normalized-key codec off):
        // the interpreter comparison must hold in both key representations.
        OptimizerConfig::default().with_sort_key_codec(false),
        OptimizerConfig::db2_1996().with_sort_key_codec(false),
    ];
    if let Some(p) = env_threads() {
        for base in configs.clone() {
            configs.push(base.with_threads(p));
        }
    }
    configs
}

fn assert_engines_agree(db: &Database, sql: &str, config: OptimizerConfig) {
    let prepared = Session::new(db)
        .config(config.clone())
        .plan(sql)
        .unwrap_or_else(|e| panic!("{sql}\nunder {config:?}: {e}"));
    let streamed = prepared
        .execute()
        .unwrap_or_else(|e| panic!("{sql}\nunder {config:?}: {e}"));
    let materialized = prepared
        .execute_materialized()
        .unwrap_or_else(|e| panic!("{sql}\nunder {config:?}: {e}"));
    assert_eq!(
        streamed.rows(),
        materialized.rows(),
        "engine mismatch\nsql: {sql}\nconfig: {config:?}\nplan:\n{}",
        prepared.explain()
    );
}

#[test]
fn end_to_end_corpus_agrees_across_engines() {
    let db = emp_db();
    for sql in EMP_QUERIES {
        for config in all_configs() {
            assert_engines_agree(&db, sql, config);
        }
    }
}

#[test]
fn end_to_end_corpus_agrees_at_odd_batch_sizes() {
    // Batch boundaries are where streaming operators break: batch size 1
    // maximizes boundaries, 17 exercises misalignment with row counts.
    let db = emp_db();
    for sql in EMP_QUERIES {
        for batch in [1usize, 17] {
            assert_engines_agree(&db, sql, OptimizerConfig::default().with_batch_size(batch));
        }
    }
}

#[test]
fn tpcd_workload_agrees_across_engines() {
    let db = build_database(TpcdConfig {
        scale: 0.003,
        seed: 77,
    })
    .unwrap();
    let workload = [
        queries::q3_default(),
        queries::q1("1998-09-02"),
        queries::order_report(),
        queries::section6_example(),
        queries::q3("1994-06-30", "automobile"),
        queries::q3("1996-01-01", "machinery"),
        queries::q3("1993-12-31", "household"),
    ];
    let mut configs = vec![
        OptimizerConfig::default(),
        OptimizerConfig::disabled(),
        OptimizerConfig::db2_1996(),
        OptimizerConfig::db2_1996_disabled(),
        OptimizerConfig::default().with_batch_size(13),
        OptimizerConfig::default().with_sort_key_codec(false),
        OptimizerConfig::db2_1996().with_sort_key_codec(false),
    ];
    if let Some(p) = env_threads() {
        configs.push(OptimizerConfig::default().with_threads(p));
        configs.push(OptimizerConfig::db2_1996().with_threads(p));
        configs.push(
            OptimizerConfig::default()
                .with_threads(p)
                .with_sort_key_codec(false),
        );
    }
    for sql in &workload {
        for config in configs.clone() {
            assert_engines_agree(&db, sql, config);
        }
    }
}

#[test]
fn sort_key_codec_output_is_bit_identical_to_legacy() {
    // The streaming engine's two key representations — normalized binary
    // sort keys (memcmp) and the legacy Value comparator — must produce
    // byte-identical rows in byte-identical order on every corpus query,
    // serial and parallel, and the codec must actually run (key bytes
    // get encoded) whenever the plan sorts.
    let db = emp_db();
    let mut degrees = vec![1usize];
    degrees.extend(env_threads());
    for sql in EMP_QUERIES {
        for &p in &degrees {
            let base = OptimizerConfig::default().with_threads(p);
            let on = Session::new(&db)
                .config(base.clone().with_sort_key_codec(true))
                .execute(sql)
                .unwrap_or_else(|e| panic!("{sql}\ncodec on, threads {p}: {e}"));
            let off = Session::new(&db)
                .config(base.with_sort_key_codec(false))
                .execute(sql)
                .unwrap_or_else(|e| panic!("{sql}\ncodec off, threads {p}: {e}"));
            assert_eq!(
                on.rows(),
                off.rows(),
                "codec on/off mismatch\nsql: {sql}\nthreads: {p}"
            );
            assert_eq!(on.io, off.io, "I/O accounting diverged\nsql: {sql}");
        }
    }
}

#[test]
fn distinct_on_encoded_keys_matches_value_comparison() {
    // The distinct operators dedup on arena-encoded key bytes when the
    // codec is on (byte equality standing in for Value equality, with
    // the codec's canonicalization of Int/Double, NaN, and signed
    // zero). Both distinct shapes — stream (ordered input) and hash
    // (first-seen) — must emit byte-identical rows either way, serial
    // and parallel, and agree with the interpreter.
    let db = emp_db();
    let queries = [
        "select distinct grade from emp order by grade",
        "select distinct emp_dept, grade from emp order by emp_dept, grade",
        "select distinct salary, grade from emp",
        "select distinct emp_dept from emp",
    ];
    for sql in queries {
        for threads in [1usize, 2, 4] {
            let base = OptimizerConfig::default().with_threads(threads);
            let on = Session::new(&db)
                .config(base.clone().with_sort_key_codec(true))
                .execute(sql)
                .unwrap_or_else(|e| panic!("{sql}\ncodec on, threads {threads}: {e}"));
            let off = Session::new(&db)
                .config(base.clone().with_sort_key_codec(false))
                .execute(sql)
                .unwrap_or_else(|e| panic!("{sql}\ncodec off, threads {threads}: {e}"));
            assert_eq!(
                on.rows(),
                off.rows(),
                "distinct codec on/off mismatch\nsql: {sql}\nthreads: {threads}"
            );
            assert_engines_agree(&db, sql, base.with_sort_key_codec(true));
        }
    }
}

#[test]
fn limit_reads_strictly_fewer_pages_than_materialized() {
    // The point of streaming scans: a LIMIT over a big table stops
    // pulling batches — and stops paying simulated page I/O — once
    // satisfied. The materializing engine always pays for the full scan.
    let db = emp_db();
    let sql = "select emp_id from emp limit 3";
    let prepared = Session::new(&db)
        // Force a plain table scan path and small batches so the limit
        // bites before the scan finishes.
        .config(OptimizerConfig::default().with_batch_size(16))
        .plan(sql)
        .unwrap();
    let streamed = prepared.execute().unwrap();
    let materialized = prepared.execute_materialized().unwrap();
    assert_eq!(streamed.rows(), materialized.rows());
    let streamed_pages = streamed.io.sequential_pages + streamed.io.random_pages;
    let materialized_pages = materialized.io.sequential_pages + materialized.io.random_pages;
    assert!(
        streamed_pages < materialized_pages,
        "streaming read {streamed_pages} pages, materialized {materialized_pages}\nplan:\n{}",
        prepared.explain()
    );
    // And it never reads more rows than the limit needs (plus at most
    // one batch of slack per scan).
    assert!(streamed.io.rows_read <= 16, "{}", streamed.io.rows_read);
}

#[test]
fn columnar_matrix_batch_threads_codec() {
    // The columnar executor against the row-at-a-time interpreter over
    // the full matrix the batch representation can perturb: batch size
    // (column boundaries), parallel degree (exchange merges of columnar
    // partitions), and key codec (column-at-a-time vs per-value key
    // encoding). Rows must be bit-identical everywhere, and within one
    // (query, batch size) cell every thread/codec combination must
    // charge exactly the same I/O.
    let db = emp_db();
    for sql in EMP_QUERIES {
        for batch in [1usize, 7, 1024] {
            let mut baseline: Option<fto_storage::IoStats> = None;
            for threads in [1usize, 2, 4] {
                for codec in [true, false] {
                    let config = OptimizerConfig::default()
                        .with_batch_size(batch)
                        .with_threads(threads)
                        .with_sort_key_codec(codec);
                    let prepared = Session::new(&db)
                        .config(config.clone())
                        .plan(sql)
                        .unwrap_or_else(|e| panic!("{sql}\nunder {config:?}: {e}"));
                    let streamed = prepared
                        .execute()
                        .unwrap_or_else(|e| panic!("{sql}\nunder {config:?}: {e}"));
                    let materialized = prepared
                        .execute_materialized()
                        .unwrap_or_else(|e| panic!("{sql}\nunder {config:?}: {e}"));
                    assert_eq!(
                        streamed.rows(),
                        materialized.rows(),
                        "columnar engine diverged from interpreter\nsql: {sql}\n\
                         batch={batch} threads={threads} codec={codec}\nplan:\n{}",
                        prepared.explain()
                    );
                    match &baseline {
                        None => baseline = Some(streamed.io),
                        Some(expected) => assert_eq!(
                            &streamed.io, expected,
                            "I/O diverged within batch={batch} cell\nsql: {sql}\n\
                             threads={threads} codec={codec}"
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn columnar_matrix_tpcd() {
    // The same matrix over the TPC-D workload (multi-way joins, grouped
    // aggregates, date filters), at a scale small enough to keep the
    // 3×3×2 sweep per query affordable.
    let db = build_database(TpcdConfig {
        scale: 0.002,
        seed: 19,
    })
    .unwrap();
    let workload = [
        queries::q3_default(),
        queries::q1("1998-09-02"),
        queries::order_report(),
        queries::section6_example(),
    ];
    for sql in &workload {
        for batch in [3usize, 256] {
            for threads in [1usize, 2, 4] {
                for codec in [true, false] {
                    let config = OptimizerConfig::default()
                        .with_batch_size(batch)
                        .with_threads(threads)
                        .with_sort_key_codec(codec);
                    assert_engines_agree(&db, sql, config);
                }
            }
        }
    }
}
