//! Differential testing of the two execution engines: every query in the
//! workload corpus must produce identical rows, in identical order,
//! through the streaming batched executor and the materializing
//! reference interpreter — under every optimizer configuration and
//! across batch sizes. Plus the I/O property the streaming engine
//! exists for: LIMIT stops paying for pages it never reads.

use fto_bench::Session;
use fto_catalog::{Catalog, ColumnDef, KeyDef};
use fto_common::{DataType, Direction, Value};
use fto_planner::OptimizerConfig;
use fto_storage::Database;
use fto_tpcd::{build_database, queries, TpcdConfig};

/// The emp/dept schema the end-to-end suite exercises.
fn emp_db() -> Database {
    let mut cat = Catalog::new();
    let dept = cat
        .create_table(
            "dept",
            vec![
                ColumnDef::new("dept_id", DataType::Int),
                ColumnDef::new("dept_name", DataType::Str),
                ColumnDef::new("budget", DataType::Int),
            ],
            vec![KeyDef::primary([0])],
        )
        .unwrap();
    let emp = cat
        .create_table(
            "emp",
            vec![
                ColumnDef::new("emp_id", DataType::Int),
                ColumnDef::new("emp_dept", DataType::Int),
                ColumnDef::new("salary", DataType::Int),
                ColumnDef::new("grade", DataType::Int),
            ],
            vec![KeyDef::primary([0])],
        )
        .unwrap();
    cat.create_index("emp_dept_ix", emp, vec![(1, Direction::Asc)], false, false)
        .unwrap();
    cat.create_index(
        "emp_grade_ix",
        emp,
        vec![(3, Direction::Asc), (0, Direction::Asc)],
        false,
        false,
    )
    .unwrap();
    let mut db = Database::new(cat);
    db.load_table(
        dept,
        (0..12)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(format!("dept{i}")),
                    Value::Int(1000 * (i % 5)),
                ]
                .into_boxed_slice()
            })
            .collect(),
    )
    .unwrap();
    db.load_table(
        emp,
        (0..400)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 12),
                    Value::Int(30_000 + (i * 97) % 50_000),
                    Value::Int(i % 5),
                ]
                .into_boxed_slice()
            })
            .collect(),
    )
    .unwrap();
    db
}

/// The query corpus from tests/end_to_end.rs, verbatim.
const EMP_QUERIES: &[&str] = &[
    "select emp_id, salary from emp where grade = 3 order by emp_id",
    "select emp_id, grade from emp where emp_dept = 2 order by grade desc, emp_id",
    "select dept_name, count(*) as n, sum(salary) as total \
     from dept, emp where dept_id = emp_dept group by dept_name order by dept_name",
    "select dept_id, dept_name, budget, count(*) as n from dept, emp \
     where dept_id = emp_dept group by dept_id, dept_name, budget order by dept_id",
    "select distinct grade from emp order by grade",
    "select distinct emp_dept, grade from emp order by emp_dept, grade",
    "select v.emp_id, v.salary from \
     (select emp_id, salary from emp where grade = 1) as v order by v.emp_id",
    "select emp_dept, sum(salary * 2) as double_pay, avg(salary) as pay, \
     min(salary) as lo, max(salary) as hi from emp group by emp_dept order by emp_dept",
    "select emp_dept, count(distinct grade) as g from emp group by emp_dept order by emp_dept",
    "select emp_id from emp where salary >= 40000 and salary < 60000 and grade <> 0 \
     order by emp_id",
    "select e.emp_id, d.dept_name, b.emp_id from emp e, dept d, emp b \
     where e.emp_dept = d.dept_id and b.emp_id = e.emp_id order by e.emp_id",
    "select emp_id, salary from emp order by salary desc, emp_id limit 7",
    "select emp_id from emp limit 5",
    "select grade from emp where grade < 2 union all select grade from emp where grade < 2 \
     order by 1",
    "select grade from emp where grade < 2 union select grade from emp where grade < 2 \
     order by 1",
    "select emp_id from emp where grade = 0 union all select emp_id from emp where grade = 1 \
     order by emp_id desc limit 4",
    "select emp_dept, count(*) as n from emp group by emp_dept having count(*) > 33 \
     order by emp_dept",
    "select emp_dept, count(*) as n from emp group by emp_dept having min(salary) < 31000 \
     order by emp_dept",
    "select emp_dept, count(*) as n from emp group by emp_dept having emp_dept * 2 >= 20 \
     order by emp_dept",
    "select dept_name, emp_id from dept join emp on dept_id = emp_dept order by emp_id",
    "select dept_id, emp_id from dept left join emp on dept_id = emp_dept and grade = 9 \
     order by dept_id",
    "select dept_id, emp_id from dept left join emp on dept_id = emp_dept and emp_id < 3 \
     order by dept_id, emp_id",
    "select dept_id, count(emp_id) as n from dept \
     left join emp on dept_id = emp_dept and grade = 0 group by dept_id order by dept_id",
    "select count(*) as n, sum(salary) as s from emp where grade = 99",
    "select dept_id, emp_id from dept \
     left join emp on dept_id = emp_dept and grade = 0 and emp_id < 50 \
     where emp_id is null order by dept_id",
    "select dept_id, emp_id from dept left join emp on dept_id = emp_dept and grade = 9 \
     where emp_id is not null order by dept_id",
    "select emp_id, emp_dept from emp \
     where emp_dept in (select dept_id from dept where budget = 0) order by emp_id",
    "select dept_id from dept where dept_id in (select emp_dept from emp where grade = 1) \
     order by dept_id",
    "select emp_id from emp where grade = 99 order by emp_id",
    "select grade, emp_id from emp where grade = 2 order by grade, emp_id",
];

/// Parallel degree to additionally run the whole suite at, from the
/// `FTO_TEST_THREADS` environment variable (CI sets 4). Unset or 1
/// means serial-only.
fn env_threads() -> Option<usize> {
    std::env::var("FTO_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&p| p > 1)
}

fn all_configs() -> Vec<OptimizerConfig> {
    let mut configs = vec![
        OptimizerConfig::default(),
        OptimizerConfig::disabled(),
        OptimizerConfig::db2_1996(),
        OptimizerConfig::db2_1996_disabled(),
        OptimizerConfig::default().with_sort_ahead(false),
        OptimizerConfig::default()
            .with_hash_join(false)
            .with_nested_loop(false),
    ];
    if let Some(p) = env_threads() {
        for base in configs.clone() {
            configs.push(base.with_threads(p));
        }
    }
    configs
}

fn assert_engines_agree(db: &Database, sql: &str, config: OptimizerConfig) {
    let prepared = Session::new(db)
        .config(config.clone())
        .plan(sql)
        .unwrap_or_else(|e| panic!("{sql}\nunder {config:?}: {e}"));
    let streamed = prepared
        .execute()
        .unwrap_or_else(|e| panic!("{sql}\nunder {config:?}: {e}"));
    let materialized = prepared
        .execute_materialized()
        .unwrap_or_else(|e| panic!("{sql}\nunder {config:?}: {e}"));
    assert_eq!(
        streamed.rows,
        materialized.rows,
        "engine mismatch\nsql: {sql}\nconfig: {config:?}\nplan:\n{}",
        prepared.explain()
    );
}

#[test]
fn end_to_end_corpus_agrees_across_engines() {
    let db = emp_db();
    for sql in EMP_QUERIES {
        for config in all_configs() {
            assert_engines_agree(&db, sql, config);
        }
    }
}

#[test]
fn end_to_end_corpus_agrees_at_odd_batch_sizes() {
    // Batch boundaries are where streaming operators break: batch size 1
    // maximizes boundaries, 17 exercises misalignment with row counts.
    let db = emp_db();
    for sql in EMP_QUERIES {
        for batch in [1usize, 17] {
            assert_engines_agree(&db, sql, OptimizerConfig::default().with_batch_size(batch));
        }
    }
}

#[test]
fn tpcd_workload_agrees_across_engines() {
    let db = build_database(TpcdConfig {
        scale: 0.003,
        seed: 77,
    })
    .unwrap();
    let workload = [
        queries::q3_default(),
        queries::q1("1998-09-02"),
        queries::order_report(),
        queries::section6_example(),
        queries::q3("1994-06-30", "automobile"),
        queries::q3("1996-01-01", "machinery"),
        queries::q3("1993-12-31", "household"),
    ];
    let mut configs = vec![
        OptimizerConfig::default(),
        OptimizerConfig::disabled(),
        OptimizerConfig::db2_1996(),
        OptimizerConfig::db2_1996_disabled(),
        OptimizerConfig::default().with_batch_size(13),
    ];
    if let Some(p) = env_threads() {
        configs.push(OptimizerConfig::default().with_threads(p));
        configs.push(OptimizerConfig::db2_1996().with_threads(p));
    }
    for sql in &workload {
        for config in configs.clone() {
            assert_engines_agree(&db, sql, config);
        }
    }
}

#[test]
fn limit_reads_strictly_fewer_pages_than_materialized() {
    // The point of streaming scans: a LIMIT over a big table stops
    // pulling batches — and stops paying simulated page I/O — once
    // satisfied. The materializing engine always pays for the full scan.
    let db = emp_db();
    let sql = "select emp_id from emp limit 3";
    let prepared = Session::new(&db)
        // Force a plain table scan path and small batches so the limit
        // bites before the scan finishes.
        .config(OptimizerConfig::default().with_batch_size(16))
        .plan(sql)
        .unwrap();
    let streamed = prepared.execute().unwrap();
    let materialized = prepared.execute_materialized().unwrap();
    assert_eq!(streamed.rows, materialized.rows);
    let streamed_pages = streamed.io.sequential_pages + streamed.io.random_pages;
    let materialized_pages = materialized.io.sequential_pages + materialized.io.random_pages;
    assert!(
        streamed_pages < materialized_pages,
        "streaming read {streamed_pages} pages, materialized {materialized_pages}\nplan:\n{}",
        prepared.explain()
    );
    // And it never reads more rows than the limit needs (plus at most
    // one batch of slack per scan).
    assert!(streamed.io.rows_read <= 16, "{}", streamed.io.rows_read);
}
