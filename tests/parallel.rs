//! Differential testing of morsel-parallel execution: every query in the
//! workload corpus must produce the same answer at parallel degrees 1, 2
//! and 4 as it does serially — bit-identical rows when the query is
//! ordered (the exchange layer is order-preserving and the partition
//! merge is deterministic), multiset-identical otherwise — and the
//! instrumented per-operator I/O rollup must stay exact at every degree.

use fto_bench::Session;
use fto_catalog::{Catalog, ColumnDef, KeyDef};
use fto_common::{DataType, Direction, Value};
use fto_planner::OptimizerConfig;
use fto_storage::Database;
use fto_tpcd::{build_database, queries, TpcdConfig};

/// The emp/dept schema the end-to-end suite exercises (mirrors
/// tests/differential.rs).
fn emp_db() -> Database {
    let mut cat = Catalog::new();
    let dept = cat
        .create_table(
            "dept",
            vec![
                ColumnDef::new("dept_id", DataType::Int),
                ColumnDef::new("dept_name", DataType::Str),
                ColumnDef::new("budget", DataType::Int),
            ],
            vec![KeyDef::primary([0])],
        )
        .unwrap();
    let emp = cat
        .create_table(
            "emp",
            vec![
                ColumnDef::new("emp_id", DataType::Int),
                ColumnDef::new("emp_dept", DataType::Int),
                ColumnDef::new("salary", DataType::Int),
                ColumnDef::new("grade", DataType::Int),
            ],
            vec![KeyDef::primary([0])],
        )
        .unwrap();
    cat.create_index("emp_dept_ix", emp, vec![(1, Direction::Asc)], false, false)
        .unwrap();
    cat.create_index(
        "emp_grade_ix",
        emp,
        vec![(3, Direction::Asc), (0, Direction::Asc)],
        false,
        false,
    )
    .unwrap();
    let mut db = Database::new(cat);
    db.load_table(
        dept,
        (0..12)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(format!("dept{i}")),
                    Value::Int(1000 * (i % 5)),
                ]
                .into_boxed_slice()
            })
            .collect(),
    )
    .unwrap();
    db.load_table(
        emp,
        (0..400)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 12),
                    Value::Int(30_000 + (i * 97) % 50_000),
                    Value::Int(i % 5),
                ]
                .into_boxed_slice()
            })
            .collect(),
    )
    .unwrap();
    db
}

/// The query corpus from tests/differential.rs, verbatim.
const EMP_QUERIES: &[&str] = &[
    "select emp_id, salary from emp where grade = 3 order by emp_id",
    "select emp_id, grade from emp where emp_dept = 2 order by grade desc, emp_id",
    "select dept_name, count(*) as n, sum(salary) as total \
     from dept, emp where dept_id = emp_dept group by dept_name order by dept_name",
    "select dept_id, dept_name, budget, count(*) as n from dept, emp \
     where dept_id = emp_dept group by dept_id, dept_name, budget order by dept_id",
    "select distinct grade from emp order by grade",
    "select distinct emp_dept, grade from emp order by emp_dept, grade",
    "select v.emp_id, v.salary from \
     (select emp_id, salary from emp where grade = 1) as v order by v.emp_id",
    "select emp_dept, sum(salary * 2) as double_pay, avg(salary) as pay, \
     min(salary) as lo, max(salary) as hi from emp group by emp_dept order by emp_dept",
    "select emp_dept, count(distinct grade) as g from emp group by emp_dept order by emp_dept",
    "select emp_id from emp where salary >= 40000 and salary < 60000 and grade <> 0 \
     order by emp_id",
    "select e.emp_id, d.dept_name, b.emp_id from emp e, dept d, emp b \
     where e.emp_dept = d.dept_id and b.emp_id = e.emp_id order by e.emp_id",
    "select emp_id, salary from emp order by salary desc, emp_id limit 7",
    "select emp_id from emp limit 5",
    "select grade from emp where grade < 2 union all select grade from emp where grade < 2 \
     order by 1",
    "select grade from emp where grade < 2 union select grade from emp where grade < 2 \
     order by 1",
    "select emp_id from emp where grade = 0 union all select emp_id from emp where grade = 1 \
     order by emp_id desc limit 4",
    "select emp_dept, count(*) as n from emp group by emp_dept having count(*) > 33 \
     order by emp_dept",
    "select emp_dept, count(*) as n from emp group by emp_dept having min(salary) < 31000 \
     order by emp_dept",
    "select emp_dept, count(*) as n from emp group by emp_dept having emp_dept * 2 >= 20 \
     order by emp_dept",
    "select dept_name, emp_id from dept join emp on dept_id = emp_dept order by emp_id",
    "select dept_id, emp_id from dept left join emp on dept_id = emp_dept and grade = 9 \
     order by dept_id",
    "select dept_id, emp_id from dept left join emp on dept_id = emp_dept and emp_id < 3 \
     order by dept_id, emp_id",
    "select dept_id, count(emp_id) as n from dept \
     left join emp on dept_id = emp_dept and grade = 0 group by dept_id order by dept_id",
    "select count(*) as n, sum(salary) as s from emp where grade = 99",
    "select dept_id, emp_id from dept \
     left join emp on dept_id = emp_dept and grade = 0 and emp_id < 50 \
     where emp_id is null order by dept_id",
    "select dept_id, emp_id from dept left join emp on dept_id = emp_dept and grade = 9 \
     where emp_id is not null order by dept_id",
    "select emp_id, emp_dept from emp \
     where emp_dept in (select dept_id from dept where budget = 0) order by emp_id",
    "select dept_id from dept where dept_id in (select emp_dept from emp where grade = 1) \
     order by dept_id",
    "select emp_id from emp where grade = 99 order by emp_id",
    "select grade, emp_id from emp where grade = 2 order by grade, emp_id",
];

/// Parallel degrees every assertion runs at. 1 doubles as a sanity check
/// that the serial path through the new lowering is unchanged.
const DEGREES: &[usize] = &[1, 2, 4];

fn rows_as_sorted_text(rows: &[Box<[Value]>]) -> Vec<String> {
    let mut text: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    text.sort();
    text
}

/// Runs `sql` serially and at each parallel degree under `config`,
/// asserting the parallel streaming output matches both the serial
/// streaming output and the materializing reference interpreter.
/// Ordered queries must match bit-for-bit; unordered ones as multisets.
fn assert_parallel_agrees(db: &Database, sql: &str, config: OptimizerConfig) {
    let ordered = sql.contains("order by");
    let serial = Session::new(db)
        .config(config.clone().with_threads(1))
        .plan(sql)
        .unwrap_or_else(|e| panic!("{sql}\nunder {config:?}: {e}"))
        .execute()
        .unwrap_or_else(|e| panic!("{sql}\nunder {config:?}: {e}"));
    for &p in DEGREES {
        let prepared = Session::new(db)
            .config(config.clone().with_threads(p))
            .plan(sql)
            .unwrap_or_else(|e| panic!("{sql}\nthreads {p} under {config:?}: {e}"));
        let parallel = prepared
            .execute()
            .unwrap_or_else(|e| panic!("{sql}\nthreads {p} under {config:?}: {e}"));
        let materialized = prepared
            .execute_materialized()
            .unwrap_or_else(|e| panic!("{sql}\nthreads {p} under {config:?}: {e}"));
        if ordered {
            assert_eq!(
                parallel.rows(),
                serial.rows(),
                "parallel degree {p} diverged from serial\nsql: {sql}\nconfig: {config:?}\nplan:\n{}",
                prepared.explain()
            );
            assert_eq!(
                parallel.rows(),
                materialized.rows(),
                "parallel degree {p} diverged from interpreter\nsql: {sql}\nconfig: {config:?}\nplan:\n{}",
                prepared.explain()
            );
        } else {
            assert_eq!(
                rows_as_sorted_text(parallel.rows()),
                rows_as_sorted_text(serial.rows()),
                "parallel degree {p} changed the multiset\nsql: {sql}\nconfig: {config:?}\nplan:\n{}",
                prepared.explain()
            );
        }
    }
}

#[test]
fn corpus_agrees_at_every_parallel_degree() {
    let db = emp_db();
    for sql in EMP_QUERIES {
        for config in [
            OptimizerConfig::default(),
            OptimizerConfig::disabled(),
            OptimizerConfig::db2_1996(),
            // Legacy Value-comparator exchange merges (codec off) must
            // stay deterministic and serial-identical too.
            OptimizerConfig::default().with_sort_key_codec(false),
        ] {
            assert_parallel_agrees(&db, sql, config);
        }
    }
}

#[test]
fn corpus_agrees_at_parallel_degrees_and_odd_batch_sizes() {
    // Batch boundaries are where streaming operators break; partition
    // boundaries are where exchanges break. Cross both: batch size 1
    // maximizes batch boundaries, 17 misaligns with partition sizes.
    let db = emp_db();
    for sql in EMP_QUERIES {
        for batch in [1usize, 17] {
            assert_parallel_agrees(&db, sql, OptimizerConfig::default().with_batch_size(batch));
        }
    }
}

#[test]
fn tpcd_workload_agrees_at_every_parallel_degree() {
    let db = build_database(TpcdConfig {
        scale: 0.003,
        seed: 77,
    })
    .unwrap();
    let workload = [
        queries::q3_default(),
        queries::q1("1998-09-02"),
        queries::order_report(),
        queries::section6_example(),
        queries::q3("1994-06-30", "automobile"),
        queries::q3("1996-01-01", "machinery"),
        queries::q3("1993-12-31", "household"),
    ];
    for sql in &workload {
        for config in [
            OptimizerConfig::default(),
            OptimizerConfig::db2_1996(),
            OptimizerConfig::default().with_batch_size(13),
            OptimizerConfig::default().with_sort_key_codec(false),
        ] {
            assert_parallel_agrees(&db, sql, config);
        }
    }
}

#[test]
fn instrumented_rollup_stays_exact_at_every_degree() {
    // The per-operator metrics invariant — every node's self delta is
    // well-defined and the deltas telescope back to the session totals —
    // must survive workers charging I/O into reserved subtree slots.
    let db = emp_db();
    for sql in EMP_QUERIES {
        for &p in DEGREES {
            for codec in [true, false] {
                let prepared = Session::new(&db)
                    .config(
                        OptimizerConfig::default()
                            .with_threads(p)
                            .with_sort_key_codec(codec),
                    )
                    .plan(sql)
                    .unwrap();
                let (out, metrics) = prepared
                    .execute_instrumented()
                    .unwrap_or_else(|e| panic!("{sql}\nthreads {p} codec {codec}: {e}"));
                metrics.validate().unwrap_or_else(|e| {
                    panic!("rollup broken\nsql: {sql}\nthreads {p} codec {codec}: {e}")
                });
                assert_eq!(
                    metrics.total_io(),
                    out.io,
                    "root inclusive I/O != session totals\nsql: {sql}\nthreads {p} codec \
                     {codec}\nplan:\n{}",
                    prepared.explain()
                );
            }
        }
    }
}

#[test]
fn parallel_heap_sort_charges_identical_io() {
    // On a pure heap-scan + sort pipeline the partitioning is
    // page-aligned and the merge-exchange charges per-run sort_rows that
    // sum to the serial total, so the headline counters must be *equal*,
    // not merely close. (Index paths are exempt: random-page adjacency
    // discounts can differ at partition cuts.)
    let db = emp_db();
    let sql = "select emp_dept, salary, emp_id from emp order by salary desc, emp_id";
    let serial = Session::new(&db)
        .config(OptimizerConfig::disabled().with_threads(1))
        .plan(sql)
        .unwrap()
        .execute()
        .unwrap();
    for &p in DEGREES {
        let parallel = Session::new(&db)
            .config(OptimizerConfig::disabled().with_threads(p))
            .plan(sql)
            .unwrap()
            .execute()
            .unwrap();
        assert_eq!(parallel.rows(), serial.rows(), "threads {p}");
        assert_eq!(
            parallel.io.sequential_pages, serial.io.sequential_pages,
            "sequential_pages at threads {p}"
        );
        assert_eq!(
            parallel.io.rows_read, serial.io.rows_read,
            "rows_read at threads {p}"
        );
        assert_eq!(
            parallel.io.sort_rows, serial.io.sort_rows,
            "sort_rows at threads {p}"
        );
    }
}

#[test]
fn codec_encodes_keys_at_every_degree() {
    // With the codec on, a sorting query must actually go through the
    // normalized-key path (key bytes get encoded) at every parallel
    // degree, and `QueryOutput::sort` must surface it. The counters are
    // process-wide deltas, so only monotone assertions are safe here.
    let db = emp_db();
    let sql = "select emp_id, salary from emp order by salary desc, emp_id";
    for &p in DEGREES {
        let out = Session::new(&db)
            .config(OptimizerConfig::default().with_threads(p))
            .plan(sql)
            .unwrap()
            .execute()
            .unwrap();
        assert!(
            out.sort.key_bytes > 0,
            "threads {p}: codec-on sort encoded no key bytes"
        );
        assert!(
            out.sort.comparisons > 0,
            "threads {p}: sort performed no comparisons"
        );
    }
}

#[test]
fn explain_analyze_reports_workers_per_exchange() {
    let db = emp_db();
    let prepared = Session::new(&db)
        .config(OptimizerConfig::disabled().with_threads(4))
        .plan("select emp_id, salary from emp order by salary, emp_id")
        .unwrap();
    let report = prepared.explain_analyze().unwrap();
    assert!(
        report.contains("workers:") && report.contains("p0") && report.contains("p3"),
        "expected per-worker annotations in:\n{report}"
    );
}
