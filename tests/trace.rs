//! Optimizer-trace and metrics-registry contracts:
//!
//! * **determinism** — `EXPLAIN OPTIMIZER` output is byte-identical
//!   across repeated runs and across executor thread counts, for every
//!   query in the differential corpus;
//! * **disabled path** — sessions without observability record zero
//!   trace events and produce identical rows to observed sessions;
//! * **reconciliation** — the registry's counters equal the summed
//!   per-query `IoStats` / `PlannerStats` totals exactly, and the trace's
//!   own event counts equal the planner's work counters;
//! * **acceptance** — `EXPLAIN OPTIMIZER` on TPC-D Q3 shows sort-ahead
//!   variants and the pruning decision for each discarded plan;
//! * **slow log** — queries past the threshold are captured with their
//!   SQL, plan, and optimizer trace; *misestimated* queries (worst
//!   per-operator Q-error past `ObsOptions::qerror_threshold`) are
//!   admitted even when fast, carrying the worst-offender operator.

use fto_bench::corpus::{emp_db, EMP_QUERIES};
use fto_bench::{ObsOptions, Observability, Session};
use fto_catalog::{Catalog, ColumnDef, KeyDef};
use fto_common::{DataType, Value};
use fto_planner::OptimizerConfig;
use fto_storage::Database;
use fto_tpcd::{build_database, queries, TpcdConfig};
use std::time::Duration;

#[test]
fn explain_optimizer_is_deterministic_across_threads_and_runs() {
    let db = emp_db();
    for sql in EMP_QUERIES {
        let mut reference: Option<String> = None;
        for threads in [1usize, 2, 4] {
            for _run in 0..2 {
                let text = Session::new(&db)
                    .config(OptimizerConfig::default().with_threads(threads))
                    .plan_traced(sql)
                    .unwrap_or_else(|e| panic!("{sql}: {e}"))
                    .explain_optimizer();
                match &reference {
                    None => reference = Some(text),
                    Some(expect) => assert_eq!(
                        expect, &text,
                        "EXPLAIN OPTIMIZER diverged at threads={threads}\nsql: {sql}"
                    ),
                }
            }
        }
    }
}

#[test]
fn explain_optimizer_is_deterministic_on_tpcd() {
    let db = build_database(TpcdConfig {
        scale: 0.003,
        seed: 77,
    })
    .unwrap();
    let sql = queries::q3_default();
    let mut reference: Option<String> = None;
    for threads in [1usize, 2, 4] {
        let text = Session::new(&db)
            .config(OptimizerConfig::default().with_threads(threads))
            .plan_traced(&sql)
            .unwrap()
            .explain_optimizer();
        match &reference {
            None => reference = Some(text),
            Some(expect) => assert_eq!(expect, &text, "diverged at threads={threads}"),
        }
    }
}

#[test]
fn disabled_path_records_no_events_and_identical_rows() {
    let db = emp_db();
    let obs = Observability::default();
    for sql in EMP_QUERIES {
        // Observed session first: rows to compare against, trace on.
        let observed = Session::new(&db)
            .observe(obs.clone())
            .execute(sql)
            .unwrap_or_else(|e| panic!("{sql}: {e}"));

        // Plain session: planning and execution must not run a single
        // trace-event closure. The counter is thread-local, so parallel
        // test threads cannot pollute it.
        let before = fto_obs::trace::events_recorded();
        let plain = Session::new(&db)
            .execute(sql)
            .unwrap_or_else(|e| panic!("{sql}: {e}"));
        let after = fto_obs::trace::events_recorded();
        assert_eq!(
            before, after,
            "tracing-disabled planning recorded events\nsql: {sql}"
        );
        assert_eq!(
            observed.rows(),
            plain.rows(),
            "observability changed query results\nsql: {sql}"
        );
    }
}

#[test]
fn registry_reconciles_exactly_with_session_totals() {
    let db = emp_db();
    let obs = Observability::default();
    let session = Session::new(&db).observe(obs.clone());

    let mut queries_run = 0u64;
    let mut rows_out = 0u64;
    let mut io = fto_storage::IoStats::default();
    let mut joins = 0u64;
    let mut generated = 0u64;
    let mut pruned = 0u64;
    let mut sorts_added = 0u64;
    let mut sorts_avoided = 0u64;
    for sql in EMP_QUERIES {
        let out = session
            .execute(sql)
            .unwrap_or_else(|e| panic!("{sql}: {e}"));
        queries_run += 1;
        rows_out += out.rows().len() as u64;
        io.merge(&out.io);
        joins += out.planner.joins_considered;
        generated += out.planner.plans_generated;
        pruned += out.planner.plans_pruned;
        sorts_added += out.planner.sorts_added;
        sorts_avoided += out.planner.sorts_avoided;
    }

    let r = obs.registry();
    assert_eq!(r.counter("session.queries"), queries_run);
    assert_eq!(r.counter("session.rows"), rows_out);
    assert_eq!(
        r.counter("session.io.sequential_pages"),
        io.sequential_pages
    );
    assert_eq!(r.counter("session.io.random_pages"), io.random_pages);
    assert_eq!(r.counter("session.io.index_pages"), io.index_pages);
    assert_eq!(r.counter("session.io.sort_rows"), io.sort_rows);
    assert_eq!(r.counter("session.io.rows_read"), io.rows_read);
    assert_eq!(r.counter("planner.joins_considered"), joins);
    assert_eq!(r.counter("planner.plans_generated"), generated);
    assert_eq!(r.counter("planner.plans_pruned"), pruned);
    assert_eq!(r.counter("planner.sorts_added"), sorts_added);
    assert_eq!(r.counter("planner.sorts_avoided"), sorts_avoided);

    let latency = r
        .histogram("query.latency_us")
        .expect("latency histogram exists");
    assert_eq!(latency.count, queries_run);
    let rows_hist = r.histogram("query.rows").expect("rows histogram exists");
    assert_eq!(rows_hist.sum, rows_out);
}

#[test]
fn trace_counts_reconcile_with_planner_stats() {
    let db = emp_db();
    for sql in EMP_QUERIES {
        let prepared = Session::new(&db)
            .plan_traced(sql)
            .unwrap_or_else(|e| panic!("{sql}: {e}"));
        let stats = prepared.planner_stats();
        let trace = prepared.trace().expect("forced trace");
        assert_eq!(
            trace.counts.plans_pruned, stats.plans_pruned,
            "pruning events must match the pruned counter\nsql: {sql}"
        );
        assert_eq!(
            trace.counts.plans_generated, stats.plans_generated,
            "generation events must match the generated counter\nsql: {sql}"
        );
        assert_eq!(
            trace.counts.sorts_added, stats.sorts_added,
            "sort-added events must match the counter\nsql: {sql}"
        );
        assert_eq!(
            trace.counts.sorts_avoided, stats.sorts_avoided,
            "sort-avoided events must match the counter\nsql: {sql}"
        );
    }
}

#[test]
fn q3_trace_shows_sort_ahead_and_pruning() {
    let db = build_database(TpcdConfig {
        scale: 0.003,
        seed: 77,
    })
    .unwrap();
    let prepared = Session::new(&db)
        .plan_traced(&queries::q3_default())
        .unwrap();
    let stats = prepared.planner_stats();
    let trace = prepared.trace().expect("forced trace").clone();
    assert_eq!(trace.dropped, 0, "Q3's trace must fit the default ring");
    assert!(
        trace.counts.sort_ahead >= 1,
        "Q3 must consider at least one sort-ahead variant\n{}",
        trace.render()
    );
    assert_eq!(
        trace.counts.plans_pruned, stats.plans_pruned,
        "every discarded plan must have its pruning decision traced"
    );
    let text = prepared.explain_optimizer();
    assert!(text.contains("sort-ahead"), "{text}");
    assert!(text.contains("pruned:"), "{text}");
    assert!(text.contains("dominated by"), "{text}");
    assert!(text.contains("summary:"), "{text}");
}

#[test]
fn slow_log_captures_sql_plan_and_trace() {
    let db = emp_db();
    let obs = Observability::new(ObsOptions {
        slow_query_threshold: Duration::ZERO,
        ..ObsOptions::default()
    });
    let session = Session::new(&db).observe(obs.clone());
    let sql = EMP_QUERIES[2];
    session.execute(sql).unwrap();
    assert_eq!(obs.slow_log().total_recorded(), 1);
    let rendered = obs.slow_log().render();
    assert!(rendered.contains(sql), "{rendered}");
    assert!(rendered.contains("optimizer trace:"), "{rendered}");
    assert!(rendered.contains("summary:"), "{rendered}");
    assert_eq!(obs.registry().counter("session.slow_queries"), 1);
}

/// Two perfectly correlated columns (`v = k`): a conjunction over both
/// defeats the independence assumption, so the planner's estimate is the
/// single-conjunct selectivity squared while the true selectivity is
/// that of one conjunct.
fn correlated_db() -> Database {
    let mut cat = Catalog::new();
    let t = cat
        .create_table(
            "t",
            vec![
                ColumnDef::new("k", DataType::Int),
                ColumnDef::new("v", DataType::Int),
            ],
            vec![KeyDef::primary([0])],
        )
        .unwrap();
    let mut db = Database::new(cat);
    db.load_table(
        t,
        (0..100)
            .map(|i| vec![Value::Int(i), Value::Int(i)].into_boxed_slice())
            .collect(),
    )
    .unwrap();
    db
}

#[test]
fn misestimated_fast_query_lands_in_the_slow_log() {
    let db = correlated_db();
    // Latency can never trip the gate (an hour); only misestimation can.
    let obs = Observability::new(ObsOptions {
        slow_query_threshold: Duration::from_secs(3600),
        qerror_threshold: 2.0,
        ..ObsOptions::default()
    });
    let session = Session::new(&db).observe(obs.clone());

    // Well-estimated query first: a full scan's cardinality is exact, so
    // nothing is admitted.
    session.execute("select k from t order by k").unwrap();
    assert_eq!(obs.slow_log().total_recorded(), 0);
    assert_eq!(obs.registry().counter("session.misestimated"), 0);

    // The correlated conjunction underestimates by ~4x — admitted despite
    // finishing far under the latency threshold.
    let sql = "select k from t where k < 25 and v < 25 order by k";
    session.execute(sql).unwrap();
    assert_eq!(obs.slow_log().total_recorded(), 1);
    assert_eq!(obs.registry().counter("session.misestimated"), 1);
    let rendered = obs.slow_log().render();
    assert!(rendered.contains(sql), "{rendered}");
    assert!(
        rendered.contains("worst estimate: "),
        "the worst-offender operator must be identified:\n{rendered}"
    );
    assert!(rendered.contains("act=25"), "{rendered}");
    // The registry saw the misestimate too: the Q-error histogram has
    // both queries, and per-operator-kind counters flag the offenders
    // (both the filter and the projection above it carry the squared
    // selectivity).
    let qerr = obs
        .registry()
        .histogram("query.qerror")
        .expect("qerror histogram exists");
    assert_eq!(qerr.count, 2);
    let flagged =
        obs.registry().counter("qerror.filter") + obs.registry().counter("qerror.project");
    assert!(flagged >= 1, "no per-operator misestimate counter bumped");
}
