//! Cross-crate end-to-end tests: SQL through parse → bind → rewrite →
//! order scan → plan → execute, validated against a naive reference
//! evaluator, across every optimizer configuration. Any plan the
//! optimizer can pick must produce the same rows — through both the
//! streaming executor (the default) and the materializing reference
//! engine.

use fto_bench::Session;
use fto_catalog::{Catalog, ColumnDef, KeyDef};
use fto_common::{DataType, Direction, Row, Value};
use fto_planner::OptimizerConfig;
use fto_storage::Database;

/// Every configuration combination worth exercising.
fn all_configs() -> Vec<OptimizerConfig> {
    vec![
        OptimizerConfig::default(),
        OptimizerConfig::disabled(),
        OptimizerConfig::db2_1996(),
        OptimizerConfig::db2_1996_disabled(),
        OptimizerConfig::default().with_sort_ahead(false),
        OptimizerConfig::default().with_merge_join(false),
        OptimizerConfig::default()
            .with_hash_join(false)
            .with_nested_loop(false),
        // Tiny batches stress operator boundaries in the streaming engine.
        OptimizerConfig::default().with_batch_size(3),
    ]
}

fn test_db() -> Database {
    let mut cat = Catalog::new();
    let dept = cat
        .create_table(
            "dept",
            vec![
                ColumnDef::new("dept_id", DataType::Int),
                ColumnDef::new("dept_name", DataType::Str),
                ColumnDef::new("budget", DataType::Int),
            ],
            vec![KeyDef::primary([0])],
        )
        .unwrap();
    let emp = cat
        .create_table(
            "emp",
            vec![
                ColumnDef::new("emp_id", DataType::Int),
                ColumnDef::new("emp_dept", DataType::Int),
                ColumnDef::new("salary", DataType::Int),
                ColumnDef::new("grade", DataType::Int),
            ],
            vec![KeyDef::primary([0])],
        )
        .unwrap();
    cat.create_index("emp_dept_ix", emp, vec![(1, Direction::Asc)], false, false)
        .unwrap();
    cat.create_index(
        "emp_grade_ix",
        emp,
        vec![(3, Direction::Asc), (0, Direction::Asc)],
        false,
        false,
    )
    .unwrap();

    let mut db = Database::new(cat);
    db.load_table(
        dept,
        (0..12)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(format!("dept{i}")),
                    Value::Int(1000 * (i % 5)),
                ]
                .into_boxed_slice()
            })
            .collect(),
    )
    .unwrap();
    db.load_table(
        emp,
        (0..400)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 12),
                    Value::Int(30_000 + (i * 97) % 50_000),
                    Value::Int(i % 5),
                ]
                .into_boxed_slice()
            })
            .collect(),
    )
    .unwrap();
    db
}

/// Executes `sql` under every configuration — through the streaming
/// engine *and* the materializing reference engine — and checks all runs
/// agree; returns the first run's rows.
fn run_all_configs(db: &Database, sql: &str) -> Vec<Row> {
    let mut reference: Option<Vec<Row>> = None;
    for config in all_configs() {
        let prepared = Session::new(db)
            .config(config.clone())
            .plan(sql)
            .unwrap_or_else(|e| panic!("{sql} under {config:?}: {e}"));
        let streamed = prepared
            .execute()
            .unwrap_or_else(|e| panic!("{sql} under {config:?}: {e}"));
        let materialized = prepared
            .execute_materialized()
            .unwrap_or_else(|e| panic!("{sql} under {config:?}: {e}"));
        assert_eq!(
            streamed.rows(),
            materialized.rows(),
            "engine mismatch for {sql} under {config:?}\nplan:\n{}",
            prepared.explain()
        );
        match &reference {
            None => reference = Some(streamed.rows().to_vec()),
            Some(expected) => assert_eq!(
                &streamed.rows(),
                expected,
                "row mismatch for {sql} under {config:?}\nplan:\n{}",
                prepared.explain()
            ),
        }
    }
    reference.unwrap()
}

#[test]
fn single_table_order_by_key() {
    let db = test_db();
    let rows = run_all_configs(
        &db,
        "select emp_id, salary from emp where grade = 3 order by emp_id",
    );
    assert_eq!(rows.len(), 80);
    let mut last = i64::MIN;
    for r in &rows {
        let id = r[0].as_int().unwrap();
        assert!(id > last);
        last = id;
    }
}

#[test]
fn order_by_desc() {
    let db = test_db();
    let rows = run_all_configs(
        &db,
        "select emp_id, grade from emp where emp_dept = 2 order by grade desc, emp_id",
    );
    assert!(!rows.is_empty());
    for w in rows.windows(2) {
        let (g1, g2) = (w[0][1].as_int().unwrap(), w[1][1].as_int().unwrap());
        assert!(g1 > g2 || (g1 == g2 && w[0][0] < w[1][0]));
    }
}

#[test]
fn join_with_group_by_and_order_by() {
    let db = test_db();
    let rows = run_all_configs(
        &db,
        "select dept_name, count(*) as n, sum(salary) as total \
         from dept, emp where dept_id = emp_dept \
         group by dept_name order by dept_name",
    );
    assert_eq!(rows.len(), 12);
    let total: i64 = rows.iter().map(|r| r[1].as_int().unwrap()).sum();
    assert_eq!(total, 400);
}

#[test]
fn group_by_key_plus_dependents() {
    // The redundancy pattern the paper highlights: grouping on a key and
    // functionally dependent columns.
    let db = test_db();
    let rows = run_all_configs(
        &db,
        "select dept_id, dept_name, budget, count(*) as n \
         from dept, emp where dept_id = emp_dept \
         group by dept_id, dept_name, budget \
         order by dept_id",
    );
    assert_eq!(rows.len(), 12);
}

#[test]
fn distinct_queries() {
    let db = test_db();
    let rows = run_all_configs(&db, "select distinct grade from emp order by grade");
    assert_eq!(rows.len(), 5);
    let rows = run_all_configs(
        &db,
        "select distinct emp_dept, grade from emp order by emp_dept, grade",
    );
    assert_eq!(rows.len(), 60);
}

#[test]
fn derived_table_with_sort_pushdown() {
    let db = test_db();
    let rows = run_all_configs(
        &db,
        "select v.emp_id, v.salary from \
         (select emp_id, salary from emp where grade = 1) as v \
         order by v.emp_id",
    );
    assert_eq!(rows.len(), 80);
}

#[test]
fn computed_expressions_and_aggregates() {
    let db = test_db();
    let rows = run_all_configs(
        &db,
        "select emp_dept, sum(salary * 2) as double_pay, avg(salary) as pay, \
         min(salary) as lo, max(salary) as hi \
         from emp group by emp_dept order by emp_dept",
    );
    assert_eq!(rows.len(), 12);
    for r in &rows {
        let lo = r[3].as_int().unwrap();
        let hi = r[4].as_int().unwrap();
        assert!(lo <= hi);
        let avg = r[2].as_double().unwrap();
        assert!((lo as f64) <= avg && avg <= hi as f64);
    }
}

#[test]
fn distinct_aggregate() {
    let db = test_db();
    let rows = run_all_configs(
        &db,
        "select emp_dept, count(distinct grade) as g from emp \
         group by emp_dept order by emp_dept",
    );
    assert_eq!(rows.len(), 12);
    for r in &rows {
        assert_eq!(r[1], Value::Int(5));
    }
}

#[test]
fn range_predicates() {
    let db = test_db();
    let rows = run_all_configs(
        &db,
        "select emp_id from emp \
         where salary >= 40000 and salary < 60000 and grade <> 0 \
         order by emp_id",
    );
    // Verify against a direct computation.
    let expected = (0..400i64)
        .filter(|i| {
            let salary = 30_000 + (i * 97) % 50_000;
            (40_000..60_000).contains(&salary) && i % 5 != 0
        })
        .count();
    assert_eq!(rows.len(), expected);
}

#[test]
fn three_way_join() {
    let db = test_db();
    // Self-join emp to dept twice through different aliases.
    let rows = run_all_configs(
        &db,
        "select e.emp_id, d.dept_name, b.emp_id \
         from emp e, dept d, emp b \
         where e.emp_dept = d.dept_id and b.emp_id = e.emp_id \
         order by e.emp_id",
    );
    assert_eq!(rows.len(), 400);
}

#[test]
fn top_n_query() {
    let db = test_db();
    // Total order (salary, emp_id) so every configuration agrees on ties.
    let rows = run_all_configs(
        &db,
        "select emp_id, salary from emp order by salary desc, emp_id limit 7",
    );
    assert_eq!(rows.len(), 7);
    for w in rows.windows(2) {
        let (s1, s2) = (w[0][1].as_int().unwrap(), w[1][1].as_int().unwrap());
        assert!(s1 > s2 || (s1 == s2 && w[0][0] < w[1][0]));
    }
    // The top row really is the maximum salary.
    let max_salary = (0..400i64)
        .map(|i| 30_000 + (i * 97) % 50_000)
        .max()
        .unwrap();
    assert_eq!(rows[0][1].as_int().unwrap(), max_salary);
}

#[test]
fn limit_without_order() {
    let db = test_db();
    for config in all_configs() {
        let out = Session::new(&db)
            .config(config)
            .execute("select emp_id from emp limit 5")
            .unwrap();
        assert_eq!(out.rows().len(), 5);
    }
}

#[test]
fn union_all_and_union_distinct() {
    let db = test_db();
    // Every grade appears in both branches: UNION ALL keeps duplicates,
    // UNION removes them.
    let all = run_all_configs(
        &db,
        "select grade from emp where grade < 2          union all select grade from emp where grade < 2          order by 1",
    );
    assert_eq!(all.len(), 320);
    let set = run_all_configs(
        &db,
        "select grade from emp where grade < 2          union select grade from emp where grade < 2          order by 1",
    );
    assert_eq!(set.len(), 2);
    assert_eq!(set[0][0], Value::Int(0));
    assert_eq!(set[1][0], Value::Int(1));
}

#[test]
fn union_with_limit() {
    let db = test_db();
    let rows = run_all_configs(
        &db,
        "select emp_id from emp where grade = 0          union all select emp_id from emp where grade = 1          order by emp_id desc limit 4",
    );
    assert_eq!(rows.len(), 4);
    for w in rows.windows(2) {
        assert!(w[0][0] > w[1][0]);
    }
}

#[test]
fn union_arity_mismatch_is_an_error() {
    let db = test_db();
    let err = match Session::new(&db)
        .plan("select emp_id, grade from emp union select emp_id from emp")
    {
        Err(e) => e,
        Ok(_) => panic!("arity mismatch accepted"),
    };
    assert!(err.to_string().contains("arities"), "{err}");
}

#[test]
fn having_filters_groups() {
    let db = test_db();
    // 400 emps over 12 depts: dept 0..3 have 34 emps, 4..11 have 33.
    let rows = run_all_configs(
        &db,
        "select emp_dept, count(*) as n from emp          group by emp_dept having count(*) > 33 order by emp_dept",
    );
    assert_eq!(rows.len(), 4);
    for r in &rows {
        assert_eq!(r[1], Value::Int(34));
    }
}

#[test]
fn having_with_hidden_aggregate() {
    let db = test_db();
    // The HAVING aggregate (min) is not in the select list: it is
    // computed as a hidden group-by output.
    let rows = run_all_configs(
        &db,
        "select emp_dept, count(*) as n from emp          group by emp_dept having min(salary) < 31000 order by emp_dept",
    );
    let expected: Vec<i64> = (0..12i64)
        .filter(|d| {
            (0..400i64)
                .filter(|i| i % 12 == *d)
                .map(|i| 30_000 + (i * 97) % 50_000)
                .min()
                .unwrap()
                < 31_000
        })
        .collect();
    let got: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    assert_eq!(got, expected);
}

#[test]
fn having_on_grouping_column_arithmetic() {
    let db = test_db();
    let rows = run_all_configs(
        &db,
        "select emp_dept, count(*) as n from emp          group by emp_dept having emp_dept * 2 >= 20 order by emp_dept",
    );
    assert_eq!(rows.len(), 2); // depts 10, 11
}

#[test]
fn inner_join_syntax_equals_comma_syntax() {
    let db = test_db();
    let explicit = run_all_configs(
        &db,
        "select dept_name, emp_id from dept join emp on dept_id = emp_dept          order by emp_id",
    );
    let comma = run_all_configs(
        &db,
        "select dept_name, emp_id from dept, emp where dept_id = emp_dept          order by emp_id",
    );
    assert_eq!(explicit, comma);
    assert_eq!(explicit.len(), 400);
}

#[test]
fn left_outer_join_pads_with_nulls() {
    let db = test_db();
    // grade = 9 matches nothing: every dept row survives with NULL emp.
    let rows = run_all_configs(
        &db,
        "select dept_id, emp_id from dept          left join emp on dept_id = emp_dept and grade = 9          order by dept_id",
    );
    assert_eq!(rows.len(), 12);
    for r in &rows {
        assert!(r[1].is_null());
    }
    // A selective but satisfiable ON: matched rows join, others pad.
    let rows = run_all_configs(
        &db,
        "select dept_id, emp_id from dept          left join emp on dept_id = emp_dept and emp_id < 3          order by dept_id, emp_id",
    );
    // Depts 0,1,2 match emp 0,1,2; the other nine pad.
    assert_eq!(rows.len(), 12);
    let padded = rows.iter().filter(|r| r[1].is_null()).count();
    assert_eq!(padded, 9);
}

#[test]
fn left_join_then_group_by() {
    let db = test_db();
    let rows = run_all_configs(
        &db,
        "select dept_id, count(emp_id) as n from dept          left join emp on dept_id = emp_dept and grade = 0          group by dept_id order by dept_id",
    );
    assert_eq!(rows.len(), 12);
    let total: i64 = rows.iter().map(|r| r[1].as_int().unwrap()).sum();
    assert_eq!(total, 80); // grade 0 ⇒ 80 employees
                           // count(emp_id) skips the NULL-padded rows but groups survive.
    assert!(rows.iter().all(|r| r[1].as_int().unwrap() >= 0));
}

#[test]
fn global_aggregate_over_empty_input_yields_one_row() {
    let db = test_db();
    for config in all_configs() {
        let out = Session::new(&db)
            .config(config)
            .execute("select count(*) as n, sum(salary) as s from emp where grade = 99")
            .unwrap();
        assert_eq!(out.rows().len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(0));
        assert!(out.rows()[0][1].is_null());
    }
}

#[test]
fn anti_join_via_left_join_is_null() {
    // The classic pattern the outer join + IS NULL combination exists
    // for: departments with no grade-0 employee below id 50.
    let db = test_db();
    let rows = run_all_configs(
        &db,
        "select dept_id, emp_id from dept          left join emp on dept_id = emp_dept and grade = 0 and emp_id < 50          where emp_id is null order by dept_id",
    );
    // grade = 0 ⇒ emp_id % 5 == 0; emp_id < 50 ⇒ ids 0,5,...,45, which
    // cover depts 0..10 minus... compute directly:
    let covered: std::collections::HashSet<i64> = (0..400i64)
        .filter(|i| i % 5 == 0 && *i < 50)
        .map(|i| i % 12)
        .collect();
    let expected: Vec<i64> = (0..12i64).filter(|d| !covered.contains(d)).collect();
    let got: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    assert_eq!(got, expected);
}

#[test]
fn is_not_null_filter() {
    let db = test_db();
    let rows = run_all_configs(
        &db,
        "select dept_id, emp_id from dept          left join emp on dept_id = emp_dept and grade = 9          where emp_id is not null order by dept_id",
    );
    assert!(rows.is_empty()); // grade 9 never matches
}

#[test]
fn in_subquery_is_a_semi_join() {
    let db = test_db();
    // Employees in departments with budget 0 (depts 0, 5, 10). Each dept
    // id appears once despite the subquery being over a joinable table.
    let rows = run_all_configs(
        &db,
        "select emp_id, emp_dept from emp          where emp_dept in (select dept_id from dept where budget = 0)          order by emp_id",
    );
    let expected = (0..400i64)
        .filter(|i| [0, 5, 10].contains(&(i % 12)))
        .count();
    assert_eq!(rows.len(), expected);
    // No duplicates: semi-join multiplicity is one per employee.
    let mut ids: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    ids.dedup();
    assert_eq!(ids.len(), rows.len());
}

#[test]
fn in_subquery_with_duplicates_in_subquery_side() {
    let db = test_db();
    // The subquery side (emp_dept) is full of duplicates; DISTINCT
    // desugaring must still yield one row per dept.
    let rows = run_all_configs(
        &db,
        "select dept_id from dept          where dept_id in (select emp_dept from emp where grade = 1)          order by dept_id",
    );
    assert_eq!(rows.len(), 12);
}

#[test]
fn empty_result_is_consistent() {
    let db = test_db();
    let rows = run_all_configs(
        &db,
        "select emp_id from emp where grade = 99 order by emp_id",
    );
    assert!(rows.is_empty());
}

#[test]
fn constant_bound_order_column() {
    // ORDER BY over a column fixed by a predicate: correct results in all
    // configurations, and the optimized plan may skip the sort entirely.
    let db = test_db();
    let rows = run_all_configs(
        &db,
        "select grade, emp_id from emp where grade = 2 order by grade, emp_id",
    );
    assert_eq!(rows.len(), 80);
}
