//! The full TPC-D-style workload through the stack, checked for
//! cross-configuration agreement, for streaming-vs-materialized engine
//! agreement, and for the semantic invariants each query's definition
//! implies.

use fto_bench::Session;
use fto_planner::OptimizerConfig;
use fto_sql::dates::parse_date;
use fto_storage::Database;
use fto_tpcd::{build_database, queries, TpcdConfig};

fn tpcd() -> Database {
    build_database(TpcdConfig {
        scale: 0.003,
        seed: 77,
    })
    .unwrap()
}

fn configs() -> [OptimizerConfig; 4] {
    [
        OptimizerConfig::default(),
        OptimizerConfig::disabled(),
        OptimizerConfig::db2_1996(),
        OptimizerConfig::db2_1996_disabled(),
    ]
}

/// Runs `sql` under every configuration through both engines and checks
/// all runs agree; returns the first run's rows.
fn agree(db: &Database, sql: &str) -> Vec<fto_common::Row> {
    let mut reference: Option<Vec<fto_common::Row>> = None;
    for config in configs() {
        let prepared = Session::new(db)
            .config(config.clone())
            .plan(sql)
            .unwrap_or_else(|e| panic!("{sql}\n{config:?}: {e}"));
        let streamed = prepared
            .execute()
            .unwrap_or_else(|e| panic!("{sql}\n{config:?}: {e}"));
        let materialized = prepared
            .execute_materialized()
            .unwrap_or_else(|e| panic!("{sql}\n{config:?}: {e}"));
        assert_eq!(
            streamed.rows(),
            materialized.rows(),
            "engine mismatch under {config:?}\n{}",
            prepared.explain()
        );
        match &reference {
            None => reference = Some(streamed.rows().to_vec()),
            Some(expected) => assert_eq!(
                &streamed.rows(),
                expected,
                "mismatch under {config:?}\n{}",
                prepared.explain()
            ),
        }
    }
    reference.unwrap()
}

#[test]
fn q3_semantics() {
    let db = tpcd();
    let rows = agree(&db, &queries::q3_default());
    assert!(!rows.is_empty());
    let cutoff = parse_date("1995-03-15").unwrap();
    // Every result order predates the cutoff and revenues are positive,
    // sorted descending.
    let mut last_rev = f64::INFINITY;
    for r in &rows {
        let rev = r[1].as_double().unwrap();
        let date = r[2].as_date().unwrap();
        assert!(date < cutoff);
        assert!(rev > 0.0);
        assert!(rev <= last_rev);
        last_rev = rev;
    }
    // l_orderkey values are unique (grouping key).
    let mut keys: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(keys.len(), rows.len());
}

#[test]
fn q1_pricing_summary() {
    let db = tpcd();
    let rows = agree(&db, &queries::q1("1998-09-02"));
    // 3 return flags × 2 statuses = at most 6 groups.
    assert!(!rows.is_empty() && rows.len() <= 6);
    for r in &rows {
        let sum_qty = r[2].as_double().unwrap();
        let count = r[7].as_int().unwrap();
        let avg_qty = r[5].as_double().unwrap();
        assert!(count > 0);
        assert!((sum_qty / count as f64 - avg_qty).abs() < 1e-6);
        let disc_price = r[4].as_double().unwrap();
        let base_price = r[3].as_double().unwrap();
        assert!(disc_price <= base_price);
    }
    // Ordered by (flag, status).
    for w in rows.windows(2) {
        let a = (w[0][0].as_str().unwrap(), w[0][1].as_str().unwrap());
        let b = (w[1][0].as_str().unwrap(), w[1][1].as_str().unwrap());
        assert!(a <= b);
    }
}

#[test]
fn order_report_groups_on_key_without_wide_sort() {
    let db = tpcd();
    let sql = queries::order_report();
    let rows = agree(&db, &sql);
    // One output row per order (o_orderkey is the key).
    let orders = db
        .catalog()
        .stats(db.catalog().table_by_name("orders").unwrap().id)
        .row_count;
    assert_eq!(rows.len() as u64, orders);

    // With order optimization the grouping-on-key redundancy disappears:
    // the widest sort in the plan is at most one column.
    let compiled = Session::new(&db).plan(&sql).unwrap();
    fn widest_sort(plan: &fto_planner::Plan) -> usize {
        let own = match &plan.node {
            fto_planner::PlanNode::Sort { spec, .. } => spec.len(),
            _ => 0,
        };
        plan.children()
            .iter()
            .map(|c| widest_sort(c))
            .max()
            .unwrap_or(0)
            .max(own)
    }
    assert!(widest_sort(compiled.plan()) <= 1, "{}", compiled.explain());
    // Without it, the optimizer must sort on all four grouping columns
    // (or hash); under the 1996 inventory the wide sort is forced.
    let disabled = Session::new(&db)
        .config(OptimizerConfig::db2_1996_disabled())
        .plan(&sql)
        .unwrap();
    assert!(widest_sort(disabled.plan()) >= 4, "{}", disabled.explain());
}

#[test]
fn section6_example_streams() {
    let db = tpcd();
    let rows = agree(&db, &queries::section6_example());
    assert!(!rows.is_empty());
    let mut last = i64::MIN;
    for r in &rows {
        let k = r[0].as_int().unwrap();
        assert!(k >= last);
        last = k;
    }
}

#[test]
fn q3_parameter_variations() {
    let db = tpcd();
    for (date, segment) in [
        ("1994-06-30", "automobile"),
        ("1996-01-01", "machinery"),
        ("1993-12-31", "household"),
    ] {
        let rows = agree(&db, &queries::q3(date, segment));
        let cutoff = parse_date(date).unwrap();
        for r in &rows {
            assert!(r[2].as_date().unwrap() < cutoff);
        }
    }
}
