//! Plan-shape assertions for the paper's figures: the optimizer must
//! *choose* the published plan structures, not merely execute correctly.

use fto_bench::harness::{paper_example_db, tpcd_db, FIG1_SQL, FIG6_SQL};
use fto_bench::{PreparedQuery, Session};
use fto_planner::{OptimizerConfig, Plan, PlanNode};
use fto_storage::Database;

fn count(plan: &Plan, pred: fn(&PlanNode) -> bool) -> usize {
    plan.count_ops(&pred)
}

/// Compiles Q3 under one configuration against a borrowed TPC-D db.
fn q3<'a>(db: &'a Database, config: OptimizerConfig) -> PreparedQuery<'a> {
    Session::new(db)
        .config(config)
        .plan(&fto_tpcd::queries::q3_default())
        .unwrap()
}

/// True when some StreamGroupBy is fed directly by a Sort.
fn sort_feeds_group_by(plan: &Plan) -> bool {
    if let PlanNode::StreamGroupBy { input, .. } = &plan.node {
        if matches!(input.node, PlanNode::Sort { .. }) {
            return true;
        }
    }
    plan.children().iter().any(|c| sort_feeds_group_by(c))
}

/// Depth of the highest Sort node (root = 0); deeper = pushed further down.
fn max_sort_depth(plan: &Plan, depth: usize) -> Option<usize> {
    let own = matches!(plan.node, PlanNode::Sort { .. }).then_some(depth);
    plan.children()
        .iter()
        .filter_map(|c| max_sort_depth(c, depth + 1))
        .chain(own)
        .max()
}

#[test]
fn figure7_shape_order_opt_enabled() {
    let db = tpcd_db(0.005).unwrap();
    let enabled = q3(&db, OptimizerConfig::db2_1996());
    let plan = enabled.plan();
    // An ordered index nested-loop join drives lineitem.
    assert!(
        count(plan, |n| matches!(n, PlanNode::IndexNestedLoopJoin { .. })) >= 1,
        "{}",
        enabled.explain()
    );
    // The streaming group-by consumes the join order directly — no sort
    // of its own.
    assert!(
        count(plan, |n| matches!(n, PlanNode::StreamGroupBy { .. })) == 1,
        "{}",
        enabled.explain()
    );
    assert!(!sort_feeds_group_by(plan), "{}", enabled.explain());
    // The ORDER BY on the computed `rev` column still requires the final
    // sort (rev only exists after aggregation), exactly as in Figure 7.
    assert!(
        matches!(plan.node, PlanNode::Sort { .. }),
        "{}",
        enabled.explain()
    );
}

#[test]
fn figure8_shape_order_opt_disabled() {
    let db = tpcd_db(0.005).unwrap();
    let disabled = q3(&db, OptimizerConfig::db2_1996_disabled());
    let plan = disabled.plan();
    // Without reduction/equivalence reasoning the group-by cannot reuse
    // any join order: it must sort on all three grouping columns.
    assert!(sort_feeds_group_by(plan), "{}", disabled.explain());
    let widest = widest_sort(plan);
    assert!(widest >= 3, "widest sort {widest}\n{}", disabled.explain());
}

fn widest_sort(plan: &Plan) -> usize {
    let own = match &plan.node {
        PlanNode::Sort { spec, .. } => spec.len(),
        _ => 0,
    };
    plan.children()
        .iter()
        .map(|c| widest_sort(c))
        .max()
        .unwrap_or(0)
        .max(own)
}

#[test]
fn enabled_plan_sorts_deeper_than_disabled() {
    // Sort-ahead pushes sorts down the join tree; the disabled build
    // sorts late (high in the plan).
    let db = tpcd_db(0.005).unwrap();
    let enabled = q3(&db, OptimizerConfig::db2_1996());
    let disabled = q3(&db, OptimizerConfig::db2_1996_disabled());
    let e = max_sort_depth(enabled.plan(), 0).unwrap_or(0);
    let d = max_sort_depth(disabled.plan(), 0).unwrap_or(0);
    assert!(
        e >= d,
        "enabled depth {e} vs disabled {d}\n{}\n{}",
        enabled.explain(),
        disabled.explain()
    );
}

#[test]
fn figure1_shape() {
    let db = paper_example_db(1000).unwrap();
    let compiled = Session::new(&db)
        .config(OptimizerConfig::db2_1996())
        .plan(FIG1_SQL)
        .unwrap();
    // Order-based group-by over a sort on a.y, as the figure draws.
    assert_eq!(
        count(compiled.plan(), |n| matches!(
            n,
            PlanNode::StreamGroupBy { .. }
        )),
        1,
        "{}",
        compiled.explain()
    );
    assert!(
        count(compiled.plan(), |n| matches!(n, PlanNode::Sort { .. })) >= 1,
        "{}",
        compiled.explain()
    );
}

#[test]
fn figure6_single_sort_ahead_serves_everything() {
    let db = paper_example_db(1000).unwrap();
    let compiled = Session::new(&db)
        .config(OptimizerConfig::db2_1996())
        .plan(FIG6_SQL)
        .unwrap();
    let plan = compiled.plan();
    // No top-level sort: the ORDER BY a.x is satisfied below.
    assert!(
        !matches!(plan.node, PlanNode::Sort { .. }),
        "{}",
        compiled.explain()
    );
    // Group-by streams without its own sort.
    assert_eq!(
        count(plan, |n| matches!(n, PlanNode::StreamGroupBy { .. })),
        1,
        "{}",
        compiled.explain()
    );
    assert!(!sort_feeds_group_by(plan), "{}", compiled.explain());
    // The one descending sort below the joins (or an index order) covers
    // merge-join + GROUP BY + ORDER BY; executing confirms the order.
    let result = compiled.execute().unwrap();
    let mut last = i64::MIN;
    for row in result.rows() {
        let x = row[0].as_int().unwrap();
        assert!(x >= last);
        last = x;
    }
}

#[test]
fn modern_inventory_still_beats_disabled_on_cost() {
    // Even with hash operators available everywhere, the optimizer with
    // order reasoning never produces a costlier plan than without it.
    let db = tpcd_db(0.005).unwrap();
    let on = q3(&db, OptimizerConfig::default());
    let off = q3(&db, OptimizerConfig::disabled());
    assert!(
        on.plan().cost.total <= off.plan().cost.total * 1.0001,
        "on {} vs off {}",
        on.plan().cost.total,
        off.plan().cost.total
    );
}
