//! Differential testing of the segmented (partial) sort enforcer: when
//! the stream below already delivers a prefix of the requested order
//! (clustered index, ordered join output), the planner sorts only within
//! prefix groups — and the output must stay bit-identical to the full
//! sort, to the materializing interpreter, and to itself across threads,
//! budgets, and both key representations.

use fto_bench::corpus::emp_db;
use fto_bench::Session;
use fto_planner::OptimizerConfig;
use fto_storage::Database;
use fto_tpcd::{build_database, TpcdConfig};

/// Corpus queries whose cheapest plan orders the stream by a prefix of
/// the requirement, leaving a residual suffix to sort within groups.
/// The ordered prefix comes from a hash join probing the sorted dept
/// side (order property (dept_id) flows through the join).
const EMP_SEGMENTED: &[&str] = &[
    "select emp_dept, dept_id, salary from dept, emp \
     where dept_id = emp_dept order by emp_dept, salary",
    "select emp_dept, dept_id, salary, grade from dept, emp \
     where dept_id = emp_dept order by emp_dept, salary desc, grade",
    "select dept_id, emp_id from dept left join emp on dept_id = emp_dept \
     order by dept_id, emp_id desc",
];

/// TPC-D: the clustered lineitem index (l_orderkey, l_linenumber)
/// supplies the prefix; only the residual columns are sorted per order.
const TPCD_SEGMENTED: &[&str] = &[
    "select l_orderkey, l_shipdate, l_extendedprice from lineitem \
     order by l_orderkey, l_shipdate",
    "select l_orderkey, l_quantity, l_linenumber from lineitem \
     order by l_orderkey, l_quantity desc, l_linenumber",
];

fn tpcd_db() -> Database {
    build_database(TpcdConfig {
        scale: 0.002,
        seed: 19,
    })
    .unwrap()
}

/// The default plan for each query must actually contain the segmented
/// sort enforcer — otherwise the matrix below silently tests nothing.
fn assert_plan_is_segmented(db: &Database, sql: &str) {
    let prepared = Session::new(db)
        .config(OptimizerConfig::default())
        .plan(sql)
        .unwrap_or_else(|e| panic!("{sql}: {e}"));
    let text = prepared.explain();
    assert!(
        text.contains("segmented-sort"),
        "expected a segmented sort in the default plan\nsql: {sql}\nplan:\n{text}"
    );
}

fn run_matrix(db: &Database, sql: &str) {
    // Baseline: segmented sort disabled, full sort enforcer, serial,
    // unbounded. Everything else must match it byte for byte.
    let baseline = Session::new(db)
        .config(OptimizerConfig::default().with_segmented_sort(false))
        .execute(sql)
        .unwrap_or_else(|e| panic!("{sql}\nfull-sort baseline: {e}"))
        .rows()
        .to_vec();
    for threads in [1usize, 2, 4] {
        for codec in [true, false] {
            for budget in [None, Some(4usize << 10)] {
                let mut config = OptimizerConfig::default()
                    .with_threads(threads)
                    .with_sort_key_codec(codec);
                if let Some(b) = budget {
                    config = config.with_memory_budget(b);
                }
                let prepared = Session::new(db)
                    .config(config)
                    .plan(sql)
                    .unwrap_or_else(|e| panic!("{sql}: {e}"));
                let streamed = prepared.execute().unwrap_or_else(|e| {
                    panic!("{sql}\nthreads={threads} codec={codec} budget={budget:?}: {e}")
                });
                assert_eq!(
                    streamed.rows(),
                    baseline,
                    "segmented sort diverged from full sort\nsql: {sql}\n\
                     threads={threads} codec={codec} budget={budget:?}\nplan:\n{}",
                    prepared.explain()
                );
                let materialized = prepared.execute_materialized().unwrap_or_else(|e| {
                    panic!("{sql}\nthreads={threads} codec={codec} budget={budget:?}: {e}")
                });
                assert_eq!(
                    streamed.rows(),
                    materialized.rows(),
                    "segmented sort diverged from the interpreter\nsql: {sql}\n\
                     threads={threads} codec={codec} budget={budget:?}"
                );
            }
        }
    }
}

#[test]
fn emp_segmented_queries_are_bit_identical_everywhere() {
    let db = emp_db();
    for sql in EMP_SEGMENTED {
        assert_plan_is_segmented(&db, sql);
        run_matrix(&db, sql);
    }
}

#[test]
fn tpcd_clustered_prefix_queries_are_bit_identical_everywhere() {
    let db = tpcd_db();
    for sql in TPCD_SEGMENTED {
        assert_plan_is_segmented(&db, sql);
        run_matrix(&db, sql);
    }
}

#[test]
fn segmented_sort_reports_groups_formed() {
    // Serial segmented execution counts every sealed prefix group; the
    // count reaches EXPLAIN ANALYZE so a user can see the partial sort
    // actually segmented.
    let db = emp_db();
    let q = Session::new(&db)
        .config(OptimizerConfig::default())
        .plan(EMP_SEGMENTED[0])
        .unwrap();
    let out = q.execute().unwrap();
    assert!(
        out.segment.groups_formed > 0,
        "segmented sort must form at least one group"
    );
    let text = q.explain_analyze().unwrap();
    assert!(text.contains("segmented: groups="), "{text}");
}

#[test]
fn segmented_sort_under_limit_stops_early() {
    // The streaming property the segmented enforcer buys: one group is
    // buffered at a time, so a LIMIT above it stops pulling the clustered
    // index scan after the first group(s) — strictly fewer rows read than
    // the unlimited query.
    let db = tpcd_db();
    let base = TPCD_SEGMENTED[0];
    let limited_sql = format!("{base} limit 5");
    let full = Session::new(&db)
        .config(OptimizerConfig::default())
        .execute(base)
        .unwrap();
    let prepared = Session::new(&db)
        .config(OptimizerConfig::default())
        .plan(&limited_sql)
        .unwrap();
    assert!(
        prepared.explain().contains("segmented-sort"),
        "plan:\n{}",
        prepared.explain()
    );
    let limited = prepared.execute().unwrap();
    assert_eq!(limited.rows(), &full.rows()[..5]);
    assert!(
        limited.io.rows_read < full.io.rows_read / 10,
        "limit over a segmented sort must stop pulling the scan: \
         read {} rows vs {} unlimited",
        limited.io.rows_read,
        full.io.rows_read
    );
}

#[test]
fn oversized_group_falls_back_to_external_sort() {
    // ~33 emp rows per dept group cannot fit a 1 KiB budget, so groups
    // route through the external run former, spill, and still come back
    // bit-identical.
    let db = emp_db();
    let sql = EMP_SEGMENTED[0];
    let baseline = Session::new(&db)
        .config(OptimizerConfig::default())
        .execute(sql)
        .unwrap()
        .rows()
        .to_vec();
    let prepared = Session::new(&db)
        .config(OptimizerConfig::default().with_memory_budget(1 << 10))
        .plan(sql)
        .unwrap();
    assert!(
        prepared.explain().contains("segmented-sort"),
        "plan:\n{}",
        prepared.explain()
    );
    let out = prepared.execute().unwrap();
    assert_eq!(out.rows(), baseline);
    assert!(
        out.io.spill_pages_written > 0,
        "groups exceeding the budget must spill through the run former"
    );
    assert!(out.spill.runs_formed > 0);
    assert!(out.segment.groups_formed > 0);
}
