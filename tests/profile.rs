//! Execution-timeline profiler and plan-quality (Q-error) contracts:
//!
//! * **invisibility** — running with the profiler attached changes
//!   nothing observable: rows are bit-identical, `IoStats` are equal,
//!   and the per-operator `PlanMetrics` rollup is exactly the same, for
//!   every corpus query at threads 1/2/4 with the sort-key codec on and
//!   off;
//! * **structure** — the captured timeline is well formed: within every
//!   lane, Begin/End span events balance and nest with matching names,
//!   timestamps are monotone, and parallel plans produce per-worker
//!   lanes beyond the coordinator's;
//! * **export** — the Chrome trace-event JSON and folded-stack exports
//!   render the same events they were built from;
//! * **Q-error** — a query whose conjunctive predicate breaks the
//!   independence assumption (perfectly correlated columns) surfaces in
//!   `EXPLAIN ANALYZE`'s `q-err` column and in
//!   [`fto_exec::PlanMetrics::worst_q_error`].

use fto_bench::corpus::{emp_db, EMP_QUERIES};
use fto_bench::Session;
use fto_catalog::{Catalog, ColumnDef, KeyDef};
use fto_common::{DataType, Value};
use fto_exec::PlanMetrics;
use fto_obs::{ExecutionProfile, SpanKind};
use fto_planner::OptimizerConfig;
use fto_storage::Database;

/// Asserts two instrumented rollups agree on everything deterministic
/// (elapsed times excluded — they are wall-clock).
fn assert_same_rollup(plain: &PlanMetrics, profiled: &PlanMetrics, sql: &str) {
    assert_eq!(plain.len(), profiled.len(), "operator count\nsql: {sql}");
    assert_eq!(plain.children, profiled.children, "tree shape\nsql: {sql}");
    for (id, (a, b)) in plain.ops.iter().zip(&profiled.ops).enumerate() {
        assert_eq!(a.name, b.name, "op {id} name\nsql: {sql}");
        assert_eq!(a.rows, b.rows, "op {id} rows\nsql: {sql}");
        assert_eq!(a.batches, b.batches, "op {id} batches\nsql: {sql}");
        assert_eq!(a.io, b.io, "op {id} io\nsql: {sql}");
        assert_eq!(a.est_rows, b.est_rows, "op {id} est rows\nsql: {sql}");
        assert_eq!(a.est_groups, b.est_groups, "op {id} est groups\nsql: {sql}");
        assert_eq!(
            a.segment_groups, b.segment_groups,
            "op {id} groups\nsql: {sql}"
        );
        assert_eq!(
            a.workers.len(),
            b.workers.len(),
            "op {id} worker count\nsql: {sql}"
        );
    }
    assert_eq!(
        plain.total_io(),
        profiled.total_io(),
        "total io\nsql: {sql}"
    );
    plain.validate().unwrap_or_else(|e| panic!("{sql}: {e}"));
    profiled.validate().unwrap_or_else(|e| panic!("{sql}: {e}"));
}

/// Walks every lane asserting Begin/End events balance, nest with
/// matching names, and timestamps never go backwards. Returns the number
/// of operator-category spans seen.
fn assert_well_formed(profile: &ExecutionProfile, sql: &str) -> usize {
    let mut operator_spans = 0usize;
    for lane in &profile.lanes {
        assert_eq!(
            lane.dropped, 0,
            "lane {} dropped events\nsql: {sql}",
            lane.lane
        );
        let mut stack: Vec<&str> = Vec::new();
        let mut last_ts = 0u64;
        for e in &lane.events {
            assert!(
                e.ts_us >= last_ts,
                "lane {} ts went backwards at {:?}\nsql: {sql}",
                lane.lane,
                e.name
            );
            last_ts = e.ts_us;
            match e.kind {
                SpanKind::Begin => {
                    if e.cat == "operator" {
                        operator_spans += 1;
                    }
                    stack.push(&e.name);
                }
                SpanKind::End => {
                    let open = stack.pop().unwrap_or_else(|| {
                        panic!(
                            "lane {}: End {:?} with no span open\nsql: {sql}",
                            lane.lane, e.name
                        )
                    });
                    assert_eq!(
                        open, e.name,
                        "lane {} mismatched span\nsql: {sql}",
                        lane.lane
                    );
                }
                SpanKind::Instant => {}
            }
        }
        assert!(
            stack.is_empty(),
            "lane {} left spans open: {stack:?}\nsql: {sql}",
            lane.lane
        );
    }
    operator_spans
}

#[test]
fn profiler_is_invisible_at_every_degree_and_codec() {
    let db = emp_db();
    for sql in EMP_QUERIES {
        for threads in [1usize, 2, 4] {
            for codec in [true, false] {
                let cfg = OptimizerConfig::default()
                    .with_threads(threads)
                    .with_sort_key_codec(codec);
                let prepared = Session::new(&db)
                    .config(cfg)
                    .plan(sql)
                    .unwrap_or_else(|e| panic!("{sql}: {e}"));
                let (plain, plain_metrics) = prepared
                    .execute_instrumented()
                    .unwrap_or_else(|e| panic!("{sql}: {e}"));
                let (profiled, profiled_metrics, profile) = prepared
                    .execute_profiled()
                    .unwrap_or_else(|e| panic!("{sql}: {e}"));
                assert_eq!(
                    plain.rows(),
                    profiled.rows(),
                    "profiling changed rows at threads={threads} codec={codec}\nsql: {sql}"
                );
                assert_eq!(
                    plain.io, profiled.io,
                    "profiling changed IoStats at threads={threads} codec={codec}\nsql: {sql}"
                );
                assert_same_rollup(&plain_metrics, &profiled_metrics, sql);
                let spans = assert_well_formed(&profile, sql);
                assert!(spans > 0, "no operator spans captured\nsql: {sql}");
            }
        }
    }
}

#[test]
fn parallel_plans_profile_into_per_worker_lanes() {
    let db = emp_db();
    let mut saw_workers = false;
    for sql in EMP_QUERIES {
        let (_, _, profile) = Session::new(&db)
            .config(OptimizerConfig::default().with_threads(4))
            .plan(sql)
            .unwrap_or_else(|e| panic!("{sql}: {e}"))
            .execute_profiled()
            .unwrap_or_else(|e| panic!("{sql}: {e}"));
        assert!(!profile.lanes.is_empty(), "no lanes captured\nsql: {sql}");
        assert_eq!(profile.lanes[0].label, "coordinator", "sql: {sql}");
        // Lane ids are allocated on the coordinator before workers spawn,
        // so the merged order is deterministic: strictly increasing ids.
        for pair in profile.lanes.windows(2) {
            assert!(pair[0].lane < pair[1].lane, "lane order\nsql: {sql}");
        }
        if profile
            .lanes
            .iter()
            .any(|l| l.label.starts_with("worker p"))
        {
            saw_workers = true;
        }
    }
    assert!(
        saw_workers,
        "no corpus query produced per-worker exchange lanes at threads=4"
    );
}

#[test]
fn exports_render_the_captured_events() {
    let db = emp_db();
    let (_, _, profile) = Session::new(&db)
        .config(OptimizerConfig::default().with_threads(2))
        .plan(EMP_QUERIES[2])
        .unwrap()
        .execute_profiled()
        .unwrap();
    let chrome = profile.to_chrome_trace();
    assert!(chrome.trim_start().starts_with('['), "{chrome}");
    assert!(chrome.trim_end().ends_with(']'), "{chrome}");
    assert!(chrome.contains("\"thread_name\""), "{chrome}");
    assert!(chrome.contains("\"ph\":\"B\""), "{chrome}");
    assert!(chrome.contains("\"ph\":\"E\""), "{chrome}");
    // Every non-metadata event renders exactly one line.
    let event_lines = chrome
        .lines()
        .filter(|l| l.contains("\"ph\":") && !l.contains("\"ph\":\"M\""))
        .count();
    assert_eq!(event_lines, profile.event_count(), "{chrome}");
    let folded = profile.to_folded_stacks();
    assert!(
        folded.lines().any(|l| l.contains(';')),
        "folded stacks have no nested frames:\n{folded}"
    );
}

/// A table whose two columns are perfectly correlated (`v = k`), built
/// to defeat the planner's attribute-independence assumption: a
/// conjunction `k < N and v < N` gets its selectivity squared while the
/// true selectivity is that of one conjunct.
fn correlated_db() -> Database {
    let mut cat = Catalog::new();
    let t = cat
        .create_table(
            "t",
            vec![
                ColumnDef::new("k", DataType::Int),
                ColumnDef::new("v", DataType::Int),
            ],
            vec![KeyDef::primary([0])],
        )
        .unwrap();
    let mut db = Database::new(cat);
    db.load_table(
        t,
        (0..100)
            .map(|i| vec![Value::Int(i), Value::Int(i)].into_boxed_slice())
            .collect(),
    )
    .unwrap();
    db
}

#[test]
fn q_error_column_reports_a_known_misestimate() {
    let db = correlated_db();
    let sql = "select k from t where k < 25 and v < 25 order by k";
    let prepared = Session::new(&db).plan(sql).unwrap();
    let (out, metrics) = prepared.execute_instrumented().unwrap();
    assert_eq!(out.num_rows(), 25);
    let (worst_id, worst_q) = metrics.worst_q_error().expect("non-empty plan");
    assert!(
        worst_q > 2.0,
        "correlated conjunction should misestimate by >2x, got {worst_q:.2}"
    );
    let worst = &metrics.ops[worst_id];
    assert!(
        worst.est_rows < 15.0 && worst.rows == 25,
        "expected squared-selectivity underestimate, got est={:.1} act={}",
        worst.est_rows,
        worst.rows
    );
    let text = prepared.explain_analyze().unwrap();
    assert!(text.contains("q-err="), "{text}");
    assert!(
        text.contains(&format!("q-err={worst_q:.2}")),
        "worst operator's q-error must render in EXPLAIN ANALYZE\n{text}"
    );
}

#[test]
fn exact_estimates_report_q_error_one() {
    let db = emp_db();
    // A full scan's cardinality comes straight from table stats — exact.
    let prepared = Session::new(&db).plan("select emp_id from emp").unwrap();
    let (_, metrics) = prepared.execute_instrumented().unwrap();
    let scan = metrics
        .ops
        .iter()
        .find(|op| op.name.contains("scan"))
        .expect("plan has a scan");
    assert_eq!(scan.rows_q_error(), 1.0, "scan of {} rows", scan.rows);
    let text = prepared.explain_analyze().unwrap();
    assert!(text.contains("q-err=1.00"), "{text}");
}
