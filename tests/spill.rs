//! Differential testing of bounded-memory execution: every query in the
//! workload corpus must produce bit-identical rows under any memory
//! budget — external sort runs, spilled hash partitions, and the bounded
//! buffer pool may change *how* the work happens, never *what* comes
//! out. Budgets sweep from "everything spills" to "nothing spills",
//! crossed with thread counts and both sort-key representations, and the
//! per-query I/O accounting must stay exact (per-operator deltas summing
//! to the session totals) on the spilling paths too.

use fto_bench::corpus::{emp_db, EMP_QUERIES};
use fto_bench::Session;
use fto_common::Row;
use fto_planner::OptimizerConfig;
use fto_storage::Database;
use fto_tpcd::{build_database, queries, TpcdConfig};

/// Budgets the matrix sweeps: 4 KiB forces nearly every sort/group-by
/// over the corpus to spill, 64 KiB spills only the bigger plans.
const BUDGETS: &[usize] = &[4 << 10, 64 << 10];

fn unbounded_rows(db: &Database, sql: &str) -> Vec<Row> {
    Session::new(db)
        .config(OptimizerConfig::default())
        .execute(sql)
        .unwrap_or_else(|e| panic!("{sql}\nunbounded: {e}"))
        .rows()
        .to_vec()
}

#[test]
fn corpus_is_bit_identical_under_memory_budgets() {
    let db = emp_db();
    for sql in EMP_QUERIES {
        let baseline = unbounded_rows(&db, sql);
        for &budget in BUDGETS {
            for threads in [1usize, 2, 4] {
                for codec in [true, false] {
                    let config = OptimizerConfig::default()
                        .with_memory_budget(budget)
                        .with_threads(threads)
                        .with_sort_key_codec(codec);
                    let out = Session::new(&db)
                        .config(config)
                        .execute(sql)
                        .unwrap_or_else(|e| {
                            panic!("{sql}\nbudget={budget} threads={threads} codec={codec}: {e}")
                        });
                    assert_eq!(
                        out.rows(),
                        baseline,
                        "bounded execution diverged\nsql: {sql}\n\
                         budget={budget} threads={threads} codec={codec}"
                    );
                }
            }
        }
    }
}

#[test]
fn unbounded_execution_never_touches_spill_or_pool() {
    // Without a budget the new machinery must be completely inert: the
    // exact I/O totals existing tests pin down can't drift.
    let db = emp_db();
    for sql in EMP_QUERIES {
        let out = Session::new(&db)
            .config(OptimizerConfig::default())
            .execute(sql)
            .unwrap();
        assert_eq!(out.io.spill_pages_written, 0, "{sql}");
        assert_eq!(out.io.spill_pages_read, 0, "{sql}");
        assert_eq!(out.io.pool_hits, 0, "{sql}");
        assert_eq!(out.io.pool_misses, 0, "{sql}");
    }
}

#[test]
fn tiny_budget_spills_and_counts_it() {
    // A sort over all 400 emp rows cannot fit a 1 KiB budget: runs must
    // spill, the merge must read them back, and both sides of the spill
    // traffic must land in the per-query I/O counters.
    let db = emp_db();
    let sql = "select emp_id, salary from emp order by salary desc, emp_id";
    let baseline = unbounded_rows(&db, sql);
    for codec in [true, false] {
        let out = Session::new(&db)
            .config(
                OptimizerConfig::default()
                    .with_memory_budget(1 << 10)
                    .with_sort_key_codec(codec),
            )
            .execute(sql)
            .unwrap();
        assert_eq!(out.rows(), baseline, "codec={codec}");
        assert!(
            out.io.spill_pages_written > 0,
            "codec={codec}: sort under 1 KiB must write spill pages"
        );
        assert!(
            out.io.spill_pages_read > 0,
            "codec={codec}: merge must read the spilled runs back"
        );
        assert!(out.spill.runs_formed > 0, "codec={codec}");
        assert!(out.spill.merge_passes > 0, "codec={codec}");
        // Heap scans go through the bounded buffer pool when a budget is
        // set; every page charge is a recorded hit or miss.
        assert!(
            out.io.pool_hits + out.io.pool_misses > 0,
            "codec={codec}: scans must route through the pool"
        );
    }
}

#[test]
fn group_by_spills_partitions_under_tiny_budget() {
    // Group on emp_id: 400 distinct groups can't all be resident under
    // 1 KiB, so overflow keys must take the partition-spill path — and
    // still come back in first-seen order with exact aggregates.
    let db = emp_db();
    let sql = "select emp_id, sum(salary) as s, count(*) as n from emp group by emp_id";
    let baseline = unbounded_rows(&db, sql);
    let out = Session::new(&db)
        .config(OptimizerConfig::default().with_memory_budget(1 << 10))
        .execute(sql)
        .unwrap();
    assert_eq!(out.rows(), baseline);
    assert!(
        out.io.spill_pages_written > 0,
        "400 groups under 1 KiB must spill partitions"
    );
    assert!(out.io.spill_pages_read > 0);
}

#[test]
fn left_join_build_side_spills_under_budget() {
    // The left-outer join admits build rows until the budget is hit,
    // then spills the remainder to a run file; probe output must stay
    // bit-identical, with matches in build arrival order even when
    // resident and spilled rows interleave within one key.
    let db = emp_db();
    let queries = [
        "select dept_id, emp_id from dept left join emp on dept_id = emp_dept \
         order by dept_id, emp_id",
        "select dept_id, emp_id, salary from dept left join emp \
         on dept_id = emp_dept and grade = 9 order by dept_id, emp_id",
    ];
    for sql in queries {
        let baseline = unbounded_rows(&db, sql);
        for &budget in BUDGETS {
            let out = Session::new(&db)
                .config(OptimizerConfig::default().with_memory_budget(budget))
                .execute(sql)
                .unwrap_or_else(|e| panic!("{sql}\nbudget={budget}: {e}"));
            assert_eq!(
                out.rows(),
                baseline,
                "left join diverged under budget\nsql: {sql}\nbudget={budget}"
            );
        }
    }
    // At 1 KiB the 400-row build side cannot stay resident: the join (or
    // the sort above it) must write spill pages and read them back.
    let sql = queries[0];
    let out = Session::new(&db)
        .config(OptimizerConfig::default().with_memory_budget(1 << 10))
        .execute(sql)
        .unwrap();
    assert_eq!(out.rows(), unbounded_rows(&db, sql));
    assert!(
        out.io.spill_pages_written > 0,
        "400 build rows under 1 KiB must spill"
    );
    assert!(out.io.spill_pages_read > 0);
}

#[test]
fn budget_and_threads_compose_bit_identically() {
    // A memory budget no longer pins execution serial: parallel workers
    // get budget/P sub-budgets and must produce the same bytes as the
    // unbounded serial baseline. The second query keeps a spilling hash
    // join inside the partition pipelines, so the sub-budgets must still
    // actually bound (and spill) the per-worker build sides.
    let db = emp_db();
    let queries = [
        "select emp_id, salary from emp order by salary desc, emp_id",
        "select dept_name, count(*) as n, sum(salary) as total \
         from dept, emp where dept_id = emp_dept group by dept_name order by dept_name",
    ];
    for (i, sql) in queries.iter().enumerate() {
        let baseline = unbounded_rows(&db, sql);
        for threads in [1usize, 2, 4] {
            let out = Session::new(&db)
                .config(
                    OptimizerConfig::default()
                        .with_memory_budget(1 << 10)
                        .with_threads(threads),
                )
                .execute(sql)
                .unwrap_or_else(|e| panic!("{sql}\nthreads={threads}: {e}"));
            assert_eq!(out.rows(), baseline, "{sql}\nthreads={threads}");
            // Scans route through the per-worker bounded pools.
            assert!(
                out.io.pool_hits + out.io.pool_misses > 0,
                "{sql}\nthreads={threads}: budgeted scans must use the pool"
            );
            if i == 1 {
                assert!(
                    out.io.spill_pages_written > 0,
                    "{sql}\nthreads={threads}: worker pipelines must spill \
                     under their sub-budgets"
                );
            }
        }
    }
}

#[test]
fn instrumented_accounting_stays_exact_while_spilling() {
    // The metrics invariant the instrumented engine guarantees — per-
    // operator I/O deltas sum exactly to the session totals — must
    // survive the spilling operators charging brand-new counters.
    let db = emp_db();
    for sql in [
        "select emp_id, salary from emp order by salary desc, emp_id",
        "select dept_name, count(*) as n, sum(salary) as total \
         from dept, emp where dept_id = emp_dept group by dept_name order by dept_name",
        "select emp_id, salary from emp order by salary desc, emp_id limit 7",
        "select distinct emp_dept, grade from emp order by emp_dept, grade",
    ] {
        let q = Session::new(&db)
            .config(OptimizerConfig::default().with_memory_budget(2 << 10))
            .plan(sql)
            .unwrap();
        let (out, metrics) = q.execute_instrumented().unwrap();
        assert!(
            metrics.validate().is_ok(),
            "{sql}: {:?}",
            metrics.validate()
        );
        assert_eq!(metrics.total_io(), out.io, "{sql}");
    }
}

#[test]
fn explain_analyze_reports_spill_traffic() {
    let db = emp_db();
    let q = Session::new(&db)
        .config(OptimizerConfig::default().with_memory_budget(1 << 10))
        .plan("select emp_id, salary from emp order by salary desc, emp_id")
        .unwrap();
    let text = q.explain_analyze().unwrap();
    assert!(text.contains("spill: w="), "{text}");
    assert!(text.contains("pool: hits="), "{text}");
    assert!(text.contains("spill: runs="), "{text}");
}

#[test]
fn tpcd_workload_is_bit_identical_under_memory_budgets() {
    let db = build_database(TpcdConfig {
        scale: 0.002,
        seed: 19,
    })
    .unwrap();
    let workload = [
        queries::q3_default(),
        queries::q1("1998-09-02"),
        queries::order_report(),
        queries::section6_example(),
    ];
    for sql in &workload {
        let baseline = unbounded_rows(&db, sql);
        for &budget in BUDGETS {
            for threads in [1usize, 2, 4] {
                for codec in [true, false] {
                    let config = OptimizerConfig::default()
                        .with_memory_budget(budget)
                        .with_threads(threads)
                        .with_sort_key_codec(codec);
                    let out = Session::new(&db)
                        .config(config)
                        .execute(sql)
                        .unwrap_or_else(|e| {
                            panic!("{sql}\nbudget={budget} threads={threads} codec={codec}: {e}")
                        });
                    assert_eq!(
                        out.rows(),
                        baseline,
                        "bounded TPC-D execution diverged\nsql: {sql}\n\
                         budget={budget} threads={threads} codec={codec}"
                    );
                }
            }
        }
    }
}
