//! Tests of the per-operator metrics layer: the rollup invariant (every
//! operator's self I/O delta sums exactly to the session totals) across
//! the differential corpus, the lazy index scan's bounded accounting
//! under LIMIT, and the EXPLAIN ANALYZE rendering end to end.

use fto_bench::{Session, StatementOutput};
use fto_catalog::{Catalog, ColumnDef, KeyDef};
use fto_common::{DataType, Direction, Value};
use fto_planner::OptimizerConfig;
use fto_storage::{Database, IndexScanState, IoStats};
use fto_tpcd::{build_database, queries, TpcdConfig};

/// The emp/dept schema from tests/differential.rs, verbatim.
fn emp_db() -> Database {
    let mut cat = Catalog::new();
    let dept = cat
        .create_table(
            "dept",
            vec![
                ColumnDef::new("dept_id", DataType::Int),
                ColumnDef::new("dept_name", DataType::Str),
                ColumnDef::new("budget", DataType::Int),
            ],
            vec![KeyDef::primary([0])],
        )
        .unwrap();
    let emp = cat
        .create_table(
            "emp",
            vec![
                ColumnDef::new("emp_id", DataType::Int),
                ColumnDef::new("emp_dept", DataType::Int),
                ColumnDef::new("salary", DataType::Int),
                ColumnDef::new("grade", DataType::Int),
            ],
            vec![KeyDef::primary([0])],
        )
        .unwrap();
    cat.create_index("emp_dept_ix", emp, vec![(1, Direction::Asc)], false, false)
        .unwrap();
    cat.create_index(
        "emp_grade_ix",
        emp,
        vec![(3, Direction::Asc), (0, Direction::Asc)],
        false,
        false,
    )
    .unwrap();
    let mut db = Database::new(cat);
    db.load_table(
        dept,
        (0..12)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(format!("dept{i}")),
                    Value::Int(1000 * (i % 5)),
                ]
                .into_boxed_slice()
            })
            .collect(),
    )
    .unwrap();
    db.load_table(
        emp,
        (0..400)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 12),
                    Value::Int(30_000 + (i * 97) % 50_000),
                    Value::Int(i % 5),
                ]
                .into_boxed_slice()
            })
            .collect(),
    )
    .unwrap();
    db
}

/// The differential corpus from tests/differential.rs, verbatim.
const EMP_QUERIES: &[&str] = &[
    "select emp_id, salary from emp where grade = 3 order by emp_id",
    "select emp_id, grade from emp where emp_dept = 2 order by grade desc, emp_id",
    "select dept_name, count(*) as n, sum(salary) as total \
     from dept, emp where dept_id = emp_dept group by dept_name order by dept_name",
    "select dept_id, dept_name, budget, count(*) as n from dept, emp \
     where dept_id = emp_dept group by dept_id, dept_name, budget order by dept_id",
    "select distinct grade from emp order by grade",
    "select distinct emp_dept, grade from emp order by emp_dept, grade",
    "select v.emp_id, v.salary from \
     (select emp_id, salary from emp where grade = 1) as v order by v.emp_id",
    "select emp_dept, sum(salary * 2) as double_pay, avg(salary) as pay, \
     min(salary) as lo, max(salary) as hi from emp group by emp_dept order by emp_dept",
    "select emp_dept, count(distinct grade) as g from emp group by emp_dept order by emp_dept",
    "select emp_id from emp where salary >= 40000 and salary < 60000 and grade <> 0 \
     order by emp_id",
    "select e.emp_id, d.dept_name, b.emp_id from emp e, dept d, emp b \
     where e.emp_dept = d.dept_id and b.emp_id = e.emp_id order by e.emp_id",
    "select emp_id, salary from emp order by salary desc, emp_id limit 7",
    "select emp_id from emp limit 5",
    "select grade from emp where grade < 2 union all select grade from emp where grade < 2 \
     order by 1",
    "select grade from emp where grade < 2 union select grade from emp where grade < 2 \
     order by 1",
    "select emp_id from emp where grade = 0 union all select emp_id from emp where grade = 1 \
     order by emp_id desc limit 4",
    "select emp_dept, count(*) as n from emp group by emp_dept having count(*) > 33 \
     order by emp_dept",
    "select emp_dept, count(*) as n from emp group by emp_dept having min(salary) < 31000 \
     order by emp_dept",
    "select emp_dept, count(*) as n from emp group by emp_dept having emp_dept * 2 >= 20 \
     order by emp_dept",
    "select dept_name, emp_id from dept join emp on dept_id = emp_dept order by emp_id",
    "select dept_id, emp_id from dept left join emp on dept_id = emp_dept and grade = 9 \
     order by dept_id",
    "select dept_id, emp_id from dept left join emp on dept_id = emp_dept and emp_id < 3 \
     order by dept_id, emp_id",
    "select dept_id, count(emp_id) as n from dept \
     left join emp on dept_id = emp_dept and grade = 0 group by dept_id order by dept_id",
    "select count(*) as n, sum(salary) as s from emp where grade = 99",
    "select dept_id, emp_id from dept \
     left join emp on dept_id = emp_dept and grade = 0 and emp_id < 50 \
     where emp_id is null order by dept_id",
    "select dept_id, emp_id from dept left join emp on dept_id = emp_dept and grade = 9 \
     where emp_id is not null order by dept_id",
    "select emp_id, emp_dept from emp \
     where emp_dept in (select dept_id from dept where budget = 0) order by emp_id",
    "select dept_id from dept where dept_id in (select emp_dept from emp where grade = 1) \
     order by dept_id",
    "select emp_id from emp where grade = 99 order by emp_id",
    "select grade, emp_id from emp where grade = 2 order by grade, emp_id",
];

fn all_configs() -> Vec<OptimizerConfig> {
    vec![
        OptimizerConfig::default(),
        OptimizerConfig::disabled(),
        OptimizerConfig::db2_1996(),
        OptimizerConfig::db2_1996_disabled(),
        OptimizerConfig::default().with_sort_ahead(false),
        OptimizerConfig::default()
            .with_hash_join(false)
            .with_nested_loop(false),
        OptimizerConfig::default().with_batch_size(1),
        OptimizerConfig::default().with_batch_size(17),
    ]
}

fn assert_metrics_account_for_everything(db: &Database, sql: &str, config: OptimizerConfig) {
    let prepared = Session::new(db)
        .config(config.clone())
        .plan(sql)
        .unwrap_or_else(|e| panic!("{sql}\nunder {config:?}: {e}"));
    let (out, metrics) = prepared
        .execute_instrumented()
        .unwrap_or_else(|e| panic!("{sql}\nunder {config:?}: {e}"));
    // Instrumentation must not change the answer.
    let plain = prepared.execute().unwrap();
    assert_eq!(out.rows(), plain.rows(), "{sql}\nunder {config:?}");
    // The rollup invariant: per-operator self deltas are well-defined and
    // sum exactly to the session totals.
    metrics.validate().unwrap_or_else(|e| {
        panic!(
            "{sql}\nunder {config:?}: {e}\nplan:\n{}",
            prepared.explain()
        )
    });
    assert_eq!(
        metrics.summed_self_io().unwrap(),
        out.io,
        "sum of per-operator deltas != session totals\nsql: {sql}\nconfig: {config:?}\nplan:\n{}",
        prepared.explain()
    );
    assert_eq!(metrics.total_io(), out.io);
    // The root operator's row count is the result row count.
    assert_eq!(metrics.ops[0].rows as usize, out.rows().len(), "{sql}");
    // One metric slot per plan operator.
    assert_eq!(metrics.len(), prepared.plan().count_ops(&|_| true), "{sql}");
}

#[test]
fn per_operator_deltas_sum_to_session_totals_across_corpus() {
    let db = emp_db();
    for sql in EMP_QUERIES {
        for config in all_configs() {
            assert_metrics_account_for_everything(&db, sql, config);
        }
    }
}

#[test]
fn per_operator_deltas_sum_to_session_totals_on_tpcd() {
    let db = build_database(TpcdConfig {
        scale: 0.003,
        seed: 77,
    })
    .unwrap();
    let workload = [
        queries::q3_default(),
        queries::q1("1998-09-02"),
        queries::order_report(),
        queries::section6_example(),
    ];
    for sql in &workload {
        for config in [
            OptimizerConfig::default(),
            OptimizerConfig::db2_1996(),
            OptimizerConfig::default().with_batch_size(13),
        ] {
            assert_metrics_account_for_everything(&db, sql, config);
        }
    }
}

#[test]
fn index_scan_under_limit_stays_lazy_and_bounded() {
    use fto_common::TableId;
    use fto_storage::{HeapTable, OrderedIndex};

    // A large indexed table: 100k rows, 40 rows/page, 256 entries/leaf.
    let mut heap = HeapTable::new(TableId(0), 100);
    for i in 0..100_000i64 {
        heap.append(vec![Value::Int(i), Value::Int(i % 7)].into_boxed_slice());
    }
    let ix = OrderedIndex::build(&heap, &[0], &[Direction::Asc]);

    let mut io = IoStats::new();
    let mut scan = IndexScanState::open(&ix, None, None, false);
    // The scan state must not have materialized the 100k matching rids at
    // open: it is a pair of positions, and its Debug rendering stays tiny
    // (an eager rid vector would render all hundred thousand entries).
    assert!(
        format!("{scan:?}").len() < 500,
        "IndexScanState appears to materialize rids: {:.200?}",
        scan
    );
    assert_eq!(io, IoStats::new(), "open() must charge nothing");

    // Pull 10 rows, as a LIMIT 10 would, then stop.
    let batch = scan.next_batch(&ix, &heap, 10, &mut io);
    assert_eq!(batch.len(), 10);
    assert_eq!(io.rows_read, 10);
    // One index leaf entered; heap pages only behind the 10 rows read
    // (all on the first page here). Nothing past the stopping point.
    assert_eq!(io.index_pages, 1);
    assert_eq!(io.sequential_pages + io.random_pages, 1);

    // Same bounds through reverse scans: last leaf, last page, 10 rows.
    let mut rio = IoStats::new();
    let mut rev = IndexScanState::open(&ix, None, None, true);
    let batch = rev.next_batch(&ix, &heap, 10, &mut rio);
    assert_eq!(batch.len(), 10);
    assert_eq!(batch[0][0], Value::Int(99_999));
    assert_eq!(rio.rows_read, 10);
    assert_eq!(rio.index_pages, 1);
    assert_eq!(rio.sequential_pages + rio.random_pages, 1);
}

#[test]
fn index_scan_limit_charges_no_pages_past_stop_through_session() {
    // A table big enough that a selective index range beats scanning:
    // 20k rows, 20 rows per distinct `v`, index on (v, k).
    let mut cat = Catalog::new();
    let big = cat
        .create_table(
            "big",
            vec![
                ColumnDef::new("k", DataType::Int),
                ColumnDef::new("v", DataType::Int),
            ],
            vec![KeyDef::primary([0])],
        )
        .unwrap();
    cat.create_index(
        "big_v_ix",
        big,
        vec![(1, Direction::Asc), (0, Direction::Asc)],
        false,
        false,
    )
    .unwrap();
    let mut db = Database::new(cat);
    db.load_table(
        big,
        (0..20_000i64)
            .map(|i| vec![Value::Int(i), Value::Int(i % 1000)].into_boxed_slice())
            .collect(),
    )
    .unwrap();

    let sql = "select k, v from big where v = 7 order by v, k limit 5";
    let prepared = Session::new(&db)
        .config(OptimizerConfig::default().with_batch_size(4))
        .plan(sql)
        .unwrap();
    assert!(
        prepared.explain().contains("index-scan"),
        "expected an index scan plan:\n{}",
        prepared.explain()
    );
    let out = prepared.execute().unwrap();
    assert_eq!(out.rows().len(), 5);
    // 20 rows match v = 7; the limit must stop the scan after at most
    // two 4-row batches, never fetching the remaining matches — let
    // alone the other 19,980 rows.
    assert!(
        out.io.rows_read <= 8,
        "read {} rows for a LIMIT 5\nplan:\n{}",
        out.io.rows_read,
        prepared.explain()
    );
    // And the page charges stay behind those rows: one index leaf plus
    // at most one heap page per fetched row.
    assert!(out.io.index_pages <= 2, "{}", out.io);
    assert!(
        out.io.sequential_pages + out.io.random_pages <= 8,
        "{}",
        out.io
    );
}

#[test]
fn explain_analyze_on_tpcd_join_shows_estimates_and_actuals() {
    let db = build_database(TpcdConfig {
        scale: 0.003,
        seed: 77,
    })
    .unwrap();
    let session = Session::new(&db);
    let sql = format!("explain analyze {}", queries::q3_default());
    let text = match session.run(&sql).unwrap() {
        StatementOutput::Explain(text) => text,
        other => panic!("expected explain output, got {other:?}"),
    };
    // A join query: the tree contains a join operator and scans.
    assert!(text.contains("join"), "{text}");
    assert!(text.contains("scan"), "{text}");
    // Every operator line carries the estimate pair...
    let op_lines = text
        .lines()
        .filter(|l| l.contains("[rows=") && l.contains("cost="))
        .count();
    // ...and an actuals annotation with rows and self pages vs estimate.
    let actual_lines = text
        .lines()
        .filter(|l| l.contains("actual: rows=") && l.contains("vs est"))
        .count();
    assert!(op_lines >= 3, "{text}");
    assert_eq!(op_lines, actual_lines, "{text}");
    assert!(text.contains("totals:"), "{text}");
}
