//! Randomized end-to-end differential testing: generated SQL queries run
//! under every optimizer configuration must produce identical results —
//! whatever join order, join method, access path, sort placement, or
//! group-by strategy each configuration picks. Every query also runs
//! through both the streaming and the materializing engine.
//!
//! Output determinism is guaranteed by always ordering by every output
//! column (a total order on the output multiset). Generation is a
//! seeded deterministic sweep (the container is offline, so no external
//! property-testing framework).

use fto_bench::Session;
use fto_catalog::{Catalog, ColumnDef, KeyDef};
use fto_common::{DataType, Direction, Rng, Value};
use fto_planner::OptimizerConfig;
use fto_storage::Database;

fn fuzz_db() -> Database {
    let mut cat = Catalog::new();
    let t1 = cat
        .create_table(
            "t1",
            vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("b", DataType::Int),
                ColumnDef::new("c", DataType::Int),
            ],
            vec![KeyDef::primary([0])],
        )
        .unwrap();
    cat.create_index("t1_b", t1, vec![(1, Direction::Asc)], false, false)
        .unwrap();
    let t2 = cat
        .create_table(
            "t2",
            vec![
                ColumnDef::new("d", DataType::Int),
                ColumnDef::new("e", DataType::Int),
                ColumnDef::new("f", DataType::Int),
            ],
            vec![KeyDef::primary([0])],
        )
        .unwrap();
    cat.create_index("t2_e", t2, vec![(1, Direction::Asc)], false, false)
        .unwrap();

    let mut db = Database::new(cat);
    db.load_table(
        t1,
        (0..90)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int((i * 7) % 10),
                    Value::Int((i * 3) % 5),
                ]
                .into_boxed_slice()
            })
            .collect(),
    )
    .unwrap();
    db.load_table(
        t2,
        (0..60)
            .map(|i| {
                vec![Value::Int(i), Value::Int(i % 10), Value::Int((i * 11) % 7)].into_boxed_slice()
            })
            .collect(),
    )
    .unwrap();
    db
}

#[derive(Clone, Debug)]
struct GenQuery {
    join: Option<&'static str>, // join predicate
    left_outer: bool,
    preds: Vec<String>,
    select: Vec<&'static str>,
    group: bool,
    desc_mask: u8,
    limit: Option<u8>,
}

const T1_COLS: [&str; 3] = ["a", "b", "c"];
const T2_COLS: [&str; 3] = ["d", "e", "f"];

fn gen_query(rng: &mut Rng) -> GenQuery {
    let join = match rng.range_usize(0, 5) {
        0 | 1 => None,
        2 | 3 => Some("b = e"),
        _ => Some("a = d"),
    };
    let n_preds = rng.range_usize(0, 3);
    let preds = (0..n_preds)
        .map(|_| {
            let c = rng.range_usize(0, 6);
            let col = if c < 3 { T1_COLS[c] } else { T2_COLS[c - 3] };
            let op = ["=", "<", ">", "<>"][rng.range_usize(0, 4)];
            let v = rng.range_incl_i64(-2, 11);
            format!("{col} {op} {v}")
        })
        .collect();
    // A non-empty subsequence of 1..4 columns out of the six.
    let all = [T1_COLS, T2_COLS].concat();
    let n_select = rng.range_usize(1, 4);
    let mut idx: Vec<usize> = (0..6).collect();
    for i in 0..n_select {
        let j = rng.range_usize(i, 6);
        idx.swap(i, j);
    }
    let mut select_idx: Vec<usize> = idx[..n_select].to_vec();
    select_idx.sort_unstable();
    GenQuery {
        join,
        left_outer: rng.bool(),
        preds,
        select: select_idx.into_iter().map(|i| all[i]).collect(),
        group: rng.bool(),
        desc_mask: rng.range_i64(0, 256) as u8,
        limit: rng.bool().then(|| rng.range_incl_i64(1, 19) as u8),
    }
}

fn render(q: &GenQuery) -> String {
    let two_tables = q.join.is_some();
    // Without a join, restrict references to t1 columns.
    let select: Vec<&str> = if two_tables {
        q.select.clone()
    } else {
        let filtered: Vec<&str> = q
            .select
            .iter()
            .copied()
            .filter(|c| T1_COLS.contains(c))
            .collect();
        if filtered.is_empty() {
            vec!["a"]
        } else {
            filtered
        }
    };
    let preds: Vec<&String> = q
        .preds
        .iter()
        .filter(|p| two_tables || T1_COLS.iter().any(|c| p.starts_with(c)))
        .collect();

    let from = match (&q.join, q.left_outer) {
        (None, _) => "t1".to_string(),
        (Some(on), false) => format!("t1 join t2 on {on}"),
        (Some(on), true) => format!("t1 left join t2 on {on}"),
    };
    let mut sql = String::from("select ");
    let items: Vec<String> = if q.group {
        let mut v: Vec<String> = select.iter().map(|c| c.to_string()).collect();
        v.push("count(*) as cnt".into());
        v.push(format!("sum({}) as sm", select[0]));
        v
    } else {
        select.iter().map(|c| c.to_string()).collect()
    };
    sql.push_str(&items.join(", "));
    sql.push_str(&format!(" from {from}"));
    if !preds.is_empty() {
        sql.push_str(" where ");
        sql.push_str(
            &preds
                .iter()
                .map(|p| p.as_str())
                .collect::<Vec<_>>()
                .join(" and "),
        );
    }
    if q.group {
        sql.push_str(" group by ");
        sql.push_str(&select.join(", "));
    }
    // Total order over every output for cross-config determinism.
    let n_out = if q.group {
        select.len() + 2
    } else {
        select.len()
    };
    let order: Vec<String> = (0..n_out)
        .map(|i| {
            let dir = if q.desc_mask >> (i % 8) & 1 == 1 {
                " desc"
            } else {
                ""
            };
            format!("{}{}", i + 1, dir)
        })
        .collect();
    sql.push_str(" order by ");
    sql.push_str(&order.join(", "));
    if let Some(n) = q.limit {
        sql.push_str(&format!(" limit {n}"));
    }
    sql
}

fn configs() -> Vec<OptimizerConfig> {
    vec![
        OptimizerConfig::default(),
        OptimizerConfig::disabled(),
        OptimizerConfig::db2_1996(),
        OptimizerConfig::db2_1996_disabled(),
        OptimizerConfig::default()
            .with_sort_ahead(false)
            .with_merge_join(false),
        OptimizerConfig::default().with_batch_size(7),
    ]
}

#[test]
fn all_configs_agree() {
    let db = fuzz_db();
    let mut rng = Rng::new(0xF02D_5EED);
    for case in 0..96 {
        let q = gen_query(&mut rng);
        let sql = render(&q);
        let mut reference: Option<Vec<fto_common::Row>> = None;
        for config in configs() {
            let prepared = Session::new(&db)
                .config(config.clone())
                .plan(&sql)
                .unwrap_or_else(|e| panic!("case {case}: {sql}\nunder {config:?}: {e}"));
            let streamed = prepared
                .execute()
                .unwrap_or_else(|e| panic!("case {case}: {sql}\nunder {config:?}: {e}"));
            let materialized = prepared
                .execute_materialized()
                .unwrap_or_else(|e| panic!("case {case}: {sql}\nunder {config:?}: {e}"));
            assert_eq!(
                streamed.rows(),
                materialized.rows(),
                "engine mismatch\ncase {case}\nsql: {sql}\nconfig: {config:?}\nplan:\n{}",
                prepared.explain()
            );
            match &reference {
                None => reference = Some(streamed.rows().to_vec()),
                Some(expected) => assert_eq!(
                    &streamed.rows(),
                    expected,
                    "row mismatch\ncase {case}\nsql: {sql}\nconfig: {config:?}\nplan:\n{}",
                    prepared.explain()
                ),
            }
        }
        // LIMIT respected.
        if let Some(n) = q.limit {
            assert!(reference.unwrap().len() <= n as usize);
        }
    }
}
