//! Quickstart: create a schema, load rows, run SQL, and look at the plan.
//!
//! ```text
//! cargo run -p fto-bench --example quickstart
//! ```

use fto_catalog::{Catalog, ColumnDef, KeyDef};
use fto_common::{DataType, Direction, Value};
use fto_exec::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Define a schema: employees with a primary key and a secondary
    //    index on department.
    let mut catalog = Catalog::new();
    let emp = catalog.create_table(
        "emp",
        vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("dept", DataType::Str),
            ColumnDef::new("salary", DataType::Int),
        ],
        vec![KeyDef::primary([0])],
    )?;
    catalog.create_index("emp_dept", emp, vec![(1, Direction::Asc)], false, false)?;

    // 2. Load data (statistics are gathered automatically).
    let mut db = Database::new(catalog);
    let depts = ["sales", "eng", "hr"];
    db.load_table(
        emp,
        (0..1000)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(depts[(i % 3) as usize]),
                    Value::Int(40_000 + (i * 37) % 60_000),
                ]
                .into_boxed_slice()
            })
            .collect(),
    )?;

    // 3. Compile and execute SQL through the streaming executor. Note the
    //    ORDER BY includes `id`, the primary key: order optimization
    //    knows `{id} -> everything`, so the sort needs just one column,
    //    and grouping on `id, dept` is really grouping on `id`.
    let sql = "select id, dept, sum(salary) as total \
               from emp \
               where dept = 'eng' \
               group by id, dept \
               order by id, dept";

    let compiled = Session::new(&db).plan(sql)?;
    let result = compiled.execute()?;
    println!("plan:\n{}", compiled.explain());
    println!("first rows:");
    for row in result.rows().iter().take(5) {
        println!("  {row:?}");
    }
    println!("(total {} rows, {})", result.num_rows(), result.io);

    // 4. The same query with order optimization disabled sorts more.
    let naive = Session::new(&db)
        .config(OptimizerConfig::disabled())
        .plan(sql)?;
    let sorts = |q: &PreparedQuery| {
        q.plan()
            .count_ops(&|n| matches!(n, fto_planner::PlanNode::Sort { .. }))
    };
    println!(
        "sorts in plan: {} with order optimization, {} without",
        sorts(&compiled),
        sorts(&naive)
    );
    Ok(())
}
