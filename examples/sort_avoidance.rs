//! Sort avoidance in practice: the redundancy patterns the paper says
//! dominate real decision-support queries — grouping on key columns,
//! sorting on columns bound to constants — and how reduction erases them.
//!
//! ```text
//! cargo run -p fto-bench --example sort_avoidance
//! ```

use fto_catalog::{Catalog, ColumnDef, KeyDef};
use fto_common::{DataType, Direction, Value};
use fto_exec::prelude::*;
use fto_planner::PlanNode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut catalog = Catalog::new();
    let t = catalog.create_table(
        "shipments",
        vec![
            ColumnDef::new("ship_id", DataType::Int),
            ColumnDef::new("region", DataType::Str),
            ColumnDef::new("status", DataType::Str),
            ColumnDef::new("weight", DataType::Int),
        ],
        vec![KeyDef::primary([0])],
    )?;
    catalog.create_index("ship_region", t, vec![(1, Direction::Asc)], false, false)?;
    let mut db = Database::new(catalog);
    let regions = ["east", "west", "north", "south"];
    let statuses = ["open", "closed"];
    db.load_table(
        t,
        (0..5000)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(regions[(i % 4) as usize]),
                    Value::str(statuses[(i % 2) as usize]),
                    Value::Int((i * 13) % 900),
                ]
                .into_boxed_slice()
            })
            .collect(),
    )?;

    let cases = [
        (
            "ORDER BY a constant-bound column costs nothing",
            "select ship_id, status from shipments \
             where status = 'open' order by status, ship_id",
        ),
        (
            "GROUP BY key + dependents needs no 3-column sort",
            "select ship_id, region, status, sum(weight) as w \
             from shipments group by ship_id, region, status \
             order by ship_id",
        ),
        (
            "DISTINCT on a key is a no-op ordering-wise",
            "select distinct ship_id, region from shipments order by ship_id",
        ),
    ];

    for (title, sql) in cases {
        println!("── {title} ──");
        println!("{sql}\n");
        for (mode, cfg) in [
            ("with order optimization", OptimizerConfig::default()),
            ("without", OptimizerConfig::disabled()),
        ] {
            let compiled = Session::new(&db).config(cfg).plan(sql)?;
            let sorts = compiled
                .plan()
                .count_ops(&|n| matches!(n, PlanNode::Sort { .. }));
            let sort_cols = max_sort_width(compiled.plan());
            println!("  {mode:<24} sorts: {sorts}, widest sort: {sort_cols} column(s)");
        }
        println!();
    }
    Ok(())
}

fn max_sort_width(plan: &fto_planner::Plan) -> usize {
    let own = match &plan.node {
        PlanNode::Sort { spec, .. } => spec.len(),
        _ => 0,
    };
    plan.children()
        .iter()
        .map(|c| max_sort_width(c))
        .max()
        .unwrap_or(0)
        .max(own)
}
