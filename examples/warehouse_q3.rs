//! The paper's headline workload: TPC-D Query 3 on a generated warehouse,
//! with and without order optimization.
//!
//! ```text
//! cargo run -p fto-bench --release --example warehouse_q3 [-- <scale>]
//! ```

use fto_exec::prelude::*;
use fto_sql::dates::format_date;
use fto_tpcd::{build_database, queries, TpcdConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);

    println!("generating TPC-D data at scale {scale}...");
    let db = build_database(TpcdConfig {
        scale,
        ..TpcdConfig::default()
    })?;
    let sql = queries::q3_default();

    for (label, config) in [
        ("order optimization ON ", OptimizerConfig::db2_1996()),
        (
            "order optimization OFF",
            OptimizerConfig::db2_1996_disabled(),
        ),
    ] {
        let compiled = Session::new(&db).config(config).plan(&sql)?;
        let result = compiled.execute()?;
        println!("\n=== {label} ===");
        println!("{}", compiled.explain());
        println!(
            "elapsed {:?}, {} rows, sorts avoided by the optimizer: {}",
            result.elapsed,
            result.num_rows(),
            result.planner.sorts_avoided
        );
        println!("top orders by potential revenue:");
        for row in result.rows().iter().take(5) {
            println!(
                "  order {:>8}  rev {:>10.2}  date {}  priority {}",
                row[0],
                row[1].as_double().unwrap_or(0.0),
                row[2].as_date().map(format_date).unwrap_or_default(),
                row[3]
            );
        }
    }
    Ok(())
}
