//! The paper's §4 walk-through, driven directly through the `fto-order`
//! public API: Reduce Order, Test Order, Cover Order, and Homogenize
//! Order on the examples the paper uses to motivate them.
//!
//! ```text
//! cargo run -p fto-bench --example order_reasoning
//! ```

use fto_common::{ColId, ColSet, Value};
use fto_order::{EquivalenceClasses, FdSet, OrderContext, OrderSpec};

fn main() {
    // Name some columns: x=c0, y=c1, z=c2.
    let (x, y, z) = (ColId(0), ColId(1), ColId(2));
    let named = |o: &OrderSpec| {
        let name = |c: ColId| ["x", "y", "z"][c.index()].to_string();
        let parts: Vec<String> = o.keys().iter().map(|k| name(k.col)).collect();
        format!("({})", parts.join(", "))
    };

    println!("§4.1 — Reduce Order");
    println!("-------------------");

    // "Consider I = (x, y) and an input stream with OP = (y). Suppose
    //  x = 10 has been applied: x is constant, so I rewrites to (y)."
    let mut eq = EquivalenceClasses::new();
    eq.bind_constant(x, Value::Int(10));
    let ctx = OrderContext::new(eq, &FdSet::new());
    let interest = OrderSpec::ascending([x, y]);
    let prop = OrderSpec::ascending([y]);
    println!(
        "with x = 10 applied:      reduce (x, y) = {}",
        named(&ctx.reduce(&interest))
    );
    println!(
        "                          (y) satisfies (x, y)? {}",
        ctx.test_order(&interest, &prop)
    );

    // "Suppose I = (x, z) and OP = (y, z) with x = y applied."
    let mut eq = EquivalenceClasses::new();
    eq.merge(x, y);
    let ctx = OrderContext::new(eq, &FdSet::new());
    println!(
        "with x = y applied:       (y, z) satisfies (x, z)? {}",
        ctx.test_order(&OrderSpec::ascending([x, z]), &OrderSpec::ascending([y, z]))
    );

    // "Suppose I = (x, y) and OP = (x, z), x a key: both rewrite to (x)."
    let mut fds = FdSet::new();
    fds.add_key(ColSet::singleton(x), ColSet::from_cols([x, y, z]));
    let ctx = OrderContext::new(EquivalenceClasses::new(), &fds);
    println!(
        "with x a key:             reduce (x, y) = {}, (x, z) satisfies (x, y)? {}",
        named(&ctx.reduce(&OrderSpec::ascending([x, y]))),
        ctx.test_order(&OrderSpec::ascending([x, y]), &OrderSpec::ascending([x, z]))
    );

    println!();
    println!("§4.3 — Cover Order");
    println!("------------------");
    let ctx = OrderContext::trivial();
    let i1 = OrderSpec::ascending([x]);
    let i2 = OrderSpec::ascending([x, y]);
    println!(
        "cover((x), (x, y))              = {}",
        ctx.cover(&i1, &i2)
            .map(|c| named(&c))
            .unwrap_or("none".into())
    );
    let i1 = OrderSpec::ascending([y, x]);
    let i2 = OrderSpec::ascending([x, y, z]);
    println!(
        "cover((y, x), (x, y, z))        = {}",
        ctx.cover(&i1, &i2)
            .map(|c| named(&c))
            .unwrap_or("none".into())
    );
    let mut eq = EquivalenceClasses::new();
    eq.bind_constant(x, Value::Int(10));
    let ctx10 = OrderContext::new(eq, &FdSet::new());
    println!(
        "... but with x = 10 applied     = {}",
        ctx10
            .cover(&i1, &i2)
            .map(|c| named(&c))
            .unwrap_or("none".into())
    );

    println!();
    println!("§4.4 — Homogenize Order");
    println!("-----------------------");
    // ORDER BY a.x, b.y over a join a.x = b.x. Columns: a.x=c0, a.y=c1,
    // b.x=c2, b.y=c3.
    let (ax, ay, bx, by) = (ColId(0), ColId(1), ColId(2), ColId(3));
    let named2 = |o: &OrderSpec| {
        let name = |c: ColId| ["a.x", "a.y", "b.x", "b.y"][c.index()].to_string();
        let parts: Vec<String> = o.keys().iter().map(|k| name(k.col)).collect();
        format!("({})", parts.join(", "))
    };
    let mut eq = EquivalenceClasses::new();
    eq.merge(ax, bx);
    let ctx = OrderContext::new(eq.clone(), &FdSet::new());
    let interest = OrderSpec::ascending([ax, by]);
    let to_b = ctx.homogenize(&interest, &ColSet::from_cols([bx, by]));
    println!(
        "(a.x, b.y) homogenized to b's columns = {}",
        to_b.map(|o| named2(&o)).unwrap_or("impossible".into())
    );
    let to_a = ctx.homogenize(&interest, &ColSet::from_cols([ax, ay]));
    println!(
        "(a.x, b.y) homogenized to a's columns = {}",
        to_a.map(|o| named2(&o)).unwrap_or("impossible".into())
    );
    // ...unless a.x is a key that survives the join: {a.x} -> {b.y}.
    let mut fds = FdSet::new();
    fds.add_key(ColSet::singleton(ax), ColSet::from_cols([ax, ay, bx, by]));
    let ctx = OrderContext::new(eq, &fds);
    let to_a = ctx.homogenize(&interest, &ColSet::from_cols([ax, ay]));
    println!(
        "... with a.x a key of the join        = {}",
        to_a.map(|o| named2(&o)).unwrap_or("impossible".into())
    );
}
