#!/usr/bin/env bash
# Local CI: the full gate a change must pass before merging.
#
#   scripts/ci.sh          # fmt + clippy + release build + tests
#   scripts/ci.sh quick    # skip the release build
#
# Everything runs offline against the vendored toolchain; no network.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> grep guard: no cloned-capacity vec![Vec::with_capacity(..); n]"
# vec![v; n] clones v — every clone of Vec::with_capacity(..) silently
# drops the capacity, so the pattern never does what it looks like.
if grep -rn 'vec!\[Vec::with_capacity' crates/ --include='*.rs'; then
    echo "guard failed: vec![Vec::with_capacity(..); n] clones drop capacity;"
    echo "use (0..n).map(|_| Vec::with_capacity(..)).collect() instead"
    exit 1
fi

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "quick" ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> sort-key codec property tests (encoded order == Value order)"
cargo test -q -p fto-common --lib sortkey

echo "==> columnar batch property tests (row round-trip, key encoders)"
cargo test -q -p fto-common --test prop_column

echo "==> cargo test -q (includes the engine differential suite)"
cargo test -q

echo "==> FTO_TEST_THREADS=4 cargo test -q --test differential --test parallel"
FTO_TEST_THREADS=4 cargo test -q -p fto-bench --test differential --test parallel

echo "==> bounded-memory differential matrix (budgets x threads x codec)"
cargo test -q -p fto-bench --test spill

echo "==> segmented-sort differential matrix (threads x codec x budgets)"
cargo test -q -p fto-bench --test segmented

if [[ "${1:-}" != "quick" ]]; then
    echo "==> cost-model calibration report (scale 0.005)"
    cargo run -q -p fto-bench --release --bin calibrate -- 0.005

    echo "==> smoke: EXPLAIN ANALYZE + EXPLAIN OPTIMIZER + \\metrics through the REPL"
    q3="select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as rev, o_orderdate, o_shippriority from customer, orders, lineitem where o_orderkey = l_orderkey and c_custkey = o_custkey and c_mktsegment = 'building' and o_orderdate < date('1995-03-15') and l_shipdate > date('1995-03-15') group by l_orderkey, o_orderdate, o_shippriority order by rev desc, o_orderdate"
    smoke_out=$(printf '%s\n' \
        "explain analyze ${q3};" \
        "explain optimizer ${q3};" \
        '\metrics' \
        ".quit" \
        | cargo run -q -p fto-bench --release --bin repl -- 0.005)
    echo "$smoke_out"
    if ! grep -q "actual: rows=" <<<"$smoke_out"; then
        echo "smoke failed: no actuals in EXPLAIN ANALYZE output"
        exit 1
    fi
    if ! grep -Eq "q-err=[0-9]+\.[0-9]+" <<<"$smoke_out"; then
        echo "smoke failed: no q-err column in EXPLAIN ANALYZE output"
        exit 1
    fi
    if ! grep -Eq "histogram query.qerror .*count=[1-9]" <<<"$smoke_out"; then
        echo "smoke failed: \\metrics query.qerror histogram not populated"
        exit 1
    fi
    if ! grep -q "sort-ahead" <<<"$smoke_out"; then
        echo "smoke failed: no sort-ahead variants in EXPLAIN OPTIMIZER output"
        exit 1
    fi
    if ! grep -q "counter session.queries" <<<"$smoke_out"; then
        echo "smoke failed: \\metrics did not expose the session counters"
        exit 1
    fi
    if ! grep -Eq "counter sort.key_bytes [1-9]" <<<"$smoke_out"; then
        echo "smoke failed: \\metrics sort.key_bytes not populated (codec not running?)"
        exit 1
    fi
    if ! grep -Eq "counter sort.comparisons [1-9]" <<<"$smoke_out"; then
        echo "smoke failed: \\metrics sort.comparisons not populated"
        exit 1
    fi

    echo "==> smoke: FTO_MEMORY_BUDGET forces spilling, surfaced in \\metrics"
    budget_out=$(printf '%s\n' \
        "${q3};" \
        '\metrics' \
        ".quit" \
        | FTO_MEMORY_BUDGET=4096 cargo run -q -p fto-bench --release --bin repl -- 0.005)
    if ! grep -Eq "counter spill.pages_written [1-9]" <<<"$budget_out"; then
        echo "smoke failed: 4 KiB budget produced no spill.pages_written in \\metrics"
        exit 1
    fi
    if ! grep -Eq "counter spill.runs_formed [1-9]" <<<"$budget_out"; then
        echo "smoke failed: 4 KiB budget produced no spill.runs_formed in \\metrics"
        exit 1
    fi
    if ! grep -Eq "counter pool.misses [1-9]" <<<"$budget_out"; then
        echo "smoke failed: budgeted scans did not route through the buffer pool"
        exit 1
    fi
    grep -E "counter (spill|pool)\." <<<"$budget_out"

    echo "==> smoke: segmented sort chosen, visible in EXPLAIN OPTIMIZER + ANALYZE"
    # Clustered lineitem index (l_orderkey, l_linenumber) delivers the
    # prefix; the planner must pick the partial sort and the executor
    # must report the groups it formed. Serial: the parallel lowering
    # degenerates to full-sort exchanges, which would hide the counter.
    segq="select l_orderkey, l_shipdate, l_extendedprice from lineitem order by l_orderkey, l_shipdate"
    seg_out=$(printf '%s\n' \
        "explain optimizer ${segq};" \
        "explain analyze ${segq};" \
        ".quit" \
        | cargo run -q -p fto-bench --release --bin repl -- 0.005)
    if ! grep -q "PartialSortChosen" <<<"$seg_out"; then
        echo "smoke failed: EXPLAIN OPTIMIZER did not record PartialSortChosen"
        exit 1
    fi
    if ! grep -Eq "segmented: groups=[1-9]" <<<"$seg_out"; then
        echo "smoke failed: EXPLAIN ANALYZE shows no segmented groups formed"
        exit 1
    fi
    grep -E "PartialSortChosen|segmented: groups=" <<<"$seg_out" | head -4

    echo "==> smoke: \\profile emits a valid Chrome trace, tracecheck-verified"
    trace_out="$(mktemp -t fto_profile_XXXXXX.json)"
    profile_out=$(printf '%s\n' \
        "\\profile ${trace_out}" \
        "${q3};" \
        ".quit" \
        | FTO_THREADS=4 cargo run -q -p fto-bench --release --bin repl -- 0.005)
    if ! grep -Eq "profile: [1-9][0-9]* events in [1-9][0-9]* lanes" <<<"$profile_out"; then
        echo "smoke failed: \\profile reported no captured events"
        exit 1
    fi
    cargo run -q -p fto-bench --release --bin tracecheck -- "$trace_out"
    if ! grep -q '"ph":"M"' "$trace_out"; then
        echo "smoke failed: trace has no thread_name metadata (per-worker lanes missing)"
        exit 1
    fi
    if [[ ! -s "${trace_out}.folded" ]]; then
        echo "smoke failed: no folded stacks written next to the Chrome trace"
        exit 1
    fi
    rm -f "$trace_out" "${trace_out}.folded"

    echo "==> smoke: columnar engine output identical across operator inventories"
    colq="select o_shippriority, count(*) as cnt from orders group by o_shippriority order by o_shippriority"
    rows_modern=$(printf '%s\n' "${colq};" ".quit" \
        | cargo run -q -p fto-bench --release --bin repl -- 0.005 2>/dev/null \
        | grep -E '^[0-9]+ \|')
    rows_1996=$(printf '%s\n' ".mode 1996" "${colq};" ".quit" \
        | cargo run -q -p fto-bench --release --bin repl -- 0.005 2>/dev/null \
        | grep -E '^[0-9]+ \|')
    if [[ -z "$rows_modern" ]]; then
        echo "smoke failed: columnar group-by query produced no rows"
        exit 1
    fi
    if [[ "$rows_modern" != "$rows_1996" ]]; then
        echo "smoke failed: hash (columnar byte-keyed) and order-based group-by disagree:"
        printf 'modern:\n%s\n1996:\n%s\n' "$rows_modern" "$rows_1996"
        exit 1
    fi
    echo "$rows_modern"
fi

echo "CI green."
