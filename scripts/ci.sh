#!/usr/bin/env bash
# Local CI: the full gate a change must pass before merging.
#
#   scripts/ci.sh          # fmt + clippy + release build + tests
#   scripts/ci.sh quick    # skip the release build
#
# Everything runs offline against the vendored toolchain; no network.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "quick" ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test -q (includes the engine differential suite)"
cargo test -q

echo "CI green."
